package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/acfg"
	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/corpus"
	"repro/internal/dataset"
)

// asmACFG runs the extraction pipeline on a listing, for tests that talk
// to the Store directly instead of through the HTTP surface.
func asmACFG(t *testing.T, asmText string) *acfg.ACFG {
	t.Helper()
	prog, err := asm.ParseString(asmText)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg.Build(prog)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return acfg.FromCFG(c)
}

// appendVariant appends one distinct sample to the store directly.
func appendVariant(t *testing.T, st *Store, family string, i int) *acfg.ACFG {
	t.Helper()
	a := asmACFG(t, variant(chainProgram, i))
	if err := st.AppendSample(family, fmt.Sprintf("%s-%03d", family, i), a.ContentHash(), a); err != nil {
		t.Fatal(err)
	}
	return a
}

// replayNames replays a freshly opened store over dir and returns the
// record names in replay order.
func replayNames(t *testing.T, dir string) []string {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = st.Close() }()
	var names []string
	if _, _, err := st.Replay(func(r *corpus.Record, fromSegment bool) error {
		names = append(names, r.Name)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return names
}

// TestWALCreationFsyncsDir is the regression test for the missing
// directory fsync: creating corpus.wal must be followed by an fsync of the
// state directory, or the filename itself can vanish on power loss even
// though the first sample's data was synced. Pre-fix code only synced the
// file.
func TestWALCreationFsyncsDir(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })

	var dirSyncs []string
	orig := fsyncDir
	fsyncDir = func(d string) error {
		dirSyncs = append(dirSyncs, d)
		return corpus.SyncDir(d)
	}
	t.Cleanup(func() { fsyncDir = orig })

	appendVariant(t, st, "clean", 0)
	found := false
	for _, d := range dirSyncs {
		if d == dir {
			found = true
		}
	}
	if !found {
		t.Fatal("first append created corpus.wal without fsyncing the state directory")
	}

	// Once the file exists, appends must not pay the directory fsync again.
	dirSyncs = nil
	appendVariant(t, st, "clean", 1)
	if len(dirSyncs) != 0 {
		t.Fatalf("append to existing WAL fsynced the directory %d times, want 0", len(dirSyncs))
	}
}

// TestTornAppendTruncatedBack is the regression test for torn records: an
// append that fails mid-write (or fails its fsync) must truncate the WAL
// back to the last durable record boundary. Pre-fix code left the torn
// half-record in place, so the NEXT successful append buried it mid-file,
// turning a survivable error into fatal corruption at replay.
func TestTornAppendTruncatedBack(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendVariant(t, st, "clean", 0)

	// Short write: half the bytes land, then the disk "fails".
	origWrite := walWrite
	walWrite = func(f *os.File, b []byte) (int, error) {
		n, _ := f.Write(b[:len(b)/2])
		return n, errors.New("injected write failure")
	}
	a := asmACFG(t, variant(chainProgram, 1))
	if err := st.AppendSample("clean", "torn-write", a.ContentHash(), a); err == nil {
		t.Fatal("append with failing write reported success")
	}
	walWrite = origWrite

	// Failed fsync: all bytes land but durability is unknown.
	origSync := walSync
	walSync = func(f *os.File) error { return errors.New("injected sync failure") }
	a2 := asmACFG(t, variant(chainProgram, 2))
	if err := st.AppendSample("clean", "torn-sync", a2.ContentHash(), a2); err == nil {
		t.Fatal("append with failing sync reported success")
	}
	walSync = origSync

	// The WAL must sit exactly at the last good boundary...
	info, err := os.Stat(filepath.Join(dir, walFilename))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != st.walSize {
		t.Fatalf("WAL is %d bytes after failed appends, want the durable %d", info.Size(), st.walSize)
	}
	// ...so the next append lands on a clean boundary.
	appendVariant(t, st, "clean", 3)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	names := replayNames(t, dir)
	want := []string{"clean-000", "clean-003"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("replay after torn appends = %v, want %v", names, want)
	}
}

// TestImportCorpusGroupCommit is the regression test for O(n) fsyncs on
// bulk import: importing n samples must cost exactly one WAL fsync, while
// the single-sample ingest path keeps its per-sample fsync.
func TestImportCorpusGroupCommit(t *testing.T) {
	dir := t.TempDir()
	srv, client, _, _ := bootStatefulServer(t, dir)

	syncs := 0
	orig := walSync
	walSync = func(f *os.File) error { syncs++; return f.Sync() }
	t.Cleanup(func() { walSync = orig })

	d := dataset.New([]string{"clean", "dirty"})
	for i := 0; i < 8; i++ {
		d.Add(&dataset.Sample{
			Name:  fmt.Sprintf("bulk-%03d", i),
			Label: i % 2,
			ACFG:  asmACFG(t, variant(chainProgram, 10+i)),
		})
	}
	if err := srv.ImportCorpus(d); err != nil {
		t.Fatal(err)
	}
	if syncs != 1 {
		t.Fatalf("importing 8 samples cost %d fsyncs, want 1 group commit", syncs)
	}

	// Per-sample durability on the upload path is untouched.
	syncs = 0
	for i := 0; i < 2; i++ {
		if err := client.AddSampleASM("clean", "", variant(chainProgram, 30+i)); err != nil {
			t.Fatal(err)
		}
	}
	if syncs != 2 {
		t.Fatalf("2 uploads cost %d fsyncs, want 2 (one per acknowledged sample)", syncs)
	}
}

// TestStateDirExclusiveLock is the regression test for WAL interleaving:
// two processes pointed at one -state-dir must not both append. The second
// OpenStore gets ErrStateDirLocked (magic-server maps it to exit 2), and
// the lock dies with the holder.
func TestStateDirExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	st1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); !errors.Is(err, ErrStateDirLocked) {
		t.Fatalf("second OpenStore err = %v, want ErrStateDirLocked", err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionRoundTrip drives the WAL→segment fold directly: records
// move into committed segments, the WAL empties, order survives, and a
// second generation lands in its own segment.
func TestCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		appendVariant(t, st, "clean", i)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Segments != 1 || stats.SegmentRecords != 4 || stats.WALRecords != 0 {
		t.Fatalf("after compaction: %+v, want 1 segment, 4 records, empty WAL", stats)
	}
	if stats.WALBytes != 0 {
		t.Fatalf("WAL holds %d bytes after full compaction, want 0", stats.WALBytes)
	}

	// Second generation: new appends land in the WAL, then their own segment.
	for i := 4; i < 6; i++ {
		appendVariant(t, st, "clean", i)
	}
	if st.Stats().WALRecords != 2 {
		t.Fatalf("WAL records = %d, want 2", st.Stats().WALRecords)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	stats = st.Stats()
	if stats.Segments != 2 || stats.SegmentRecords != 6 || stats.WALRecords != 0 {
		t.Fatalf("after second compaction: %+v, want 2 segments, 6 records", stats)
	}
	if stats.Compactions != 2 {
		t.Fatalf("compactions = %d, want 2", stats.Compactions)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	names := replayNames(t, dir)
	if len(names) != 6 {
		t.Fatalf("replayed %d records, want 6", len(names))
	}
	for i, name := range names {
		if want := fmt.Sprintf("clean-%03d", i); name != want {
			t.Fatalf("replay[%d] = %q, want %q (order must survive compaction)", i, name, want)
		}
	}
}

// TestCrashBetweenSegmentCommitAndSwapNoDoubleCount reconstructs the exact
// on-disk state left by a crash after the segment commit but before the
// WAL tail swap: every record exists in BOTH tiers. Replay must dedup by
// content hash (no double count), and the next compaction must not write
// the duplicates into a second segment.
func TestCrashBetweenSegmentCommitAndSwapNoDoubleCount(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var recs []*corpus.Record
	for i := 0; i < 4; i++ {
		a := asmACFG(t, variant(chainProgram, i))
		name := fmt.Sprintf("clean-%03d", i)
		if err := st.AppendSample("clean", name, a.ContentHash(), a); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, &corpus.Record{Family: "clean", Name: name, Hash: a.ContentHash(), ACFG: a})
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The "crash": a fully committed segment holding the same records, with
	// the WAL never truncated.
	w, err := corpus.NewWriter(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	srv, _, replayed, _ := bootStatefulServer(t, dir)
	if replayed != 4 {
		t.Fatalf("replayed %d samples from duplicated tiers, want 4 (hash dedup)", replayed)
	}
	srv.mu.Lock()
	st2 := srv.store
	corpusLen := srv.corpus.Len()
	srv.mu.Unlock()
	if corpusLen != 4 {
		t.Fatalf("corpus holds %d samples, want 4", corpusLen)
	}

	// The recovery compaction sees every WAL record already in a segment:
	// it must just swap the tail, not write a duplicate segment.
	if err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	stats := st2.Stats()
	if stats.Segments != 1 || stats.SegmentRecords != 4 {
		t.Fatalf("recovery compaction produced %+v, want the original 1 segment / 4 records", stats)
	}
	if stats.WALRecords != 0 || stats.WALBytes != 0 {
		t.Fatalf("WAL not emptied by recovery compaction: %+v", stats)
	}
}

// TestRestartThroughSegmentsBitIdentical is the end-to-end durability
// acceptance test: upload, train, compact into segments, kill -9, reboot —
// the rebuilt server must serve bit-identical prediction probabilities and
// report consistent corpus health.
func TestRestartThroughSegmentsBitIdentical(t *testing.T) {
	dir := t.TempDir()
	srv1, client1, _, _ := bootStatefulServer(t, dir)
	for i := 0; i < 3; i++ {
		if err := client1.AddSampleASM("clean", "", variant(chainProgram, i)); err != nil {
			t.Fatal(err)
		}
		if err := client1.AddSampleASM("dirty", "", variant(loopProgram, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client1.Train(3, 0); err != nil {
		t.Fatal(err)
	}
	srv1.mu.Lock()
	st1 := srv1.store
	srv1.mu.Unlock()
	if err := st1.Compact(); err != nil {
		t.Fatal(err)
	}
	if st1.Stats().Segments == 0 {
		t.Fatal("compaction produced no segment")
	}
	before, err := client1.PredictASM(variant(loopProgram, 7))
	if err != nil {
		t.Fatal(err)
	}
	crash(srv1)

	_, client2, replayed, loaded := bootStatefulServer(t, dir)
	if replayed != 6 || !loaded {
		t.Fatalf("reboot replayed %d samples (model %v), want 6 and a checkpoint", replayed, loaded)
	}
	hs, err := client2.HealthInfo()
	if err != nil {
		t.Fatal(err)
	}
	if hs.CorpusSamples != 6 || hs.SegmentSamples != 6 || hs.WALSamples != 0 || hs.CorpusSegments == 0 {
		t.Fatalf("health after reboot = %+v, want all 6 samples in segments", hs)
	}
	after, err := client2.PredictASM(variant(loopProgram, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Predictions) != len(after.Predictions) {
		t.Fatalf("prediction shapes differ: %d vs %d", len(before.Predictions), len(after.Predictions))
	}
	for i := range before.Predictions {
		b, a := before.Predictions[i], after.Predictions[i]
		if b.Family != a.Family || b.Probability != a.Probability {
			t.Fatalf("prediction %d differs across kill-9 restart: %s %.17g vs %s %.17g",
				i, b.Family, b.Probability, a.Family, a.Probability)
		}
	}
}
