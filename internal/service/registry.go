package service

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// maxModelVersions bounds the registry. When a new version is registered
// past the bound, the oldest version that is neither active nor the
// rollback target is evicted; in-flight requests holding its serving
// snapshot drain unaffected (the snapshot keeps the model alive).
const maxModelVersions = 8

// versionPrefix shapes generated model version IDs: mv-000001, mv-000002…
// A checkpointed model carries its ID across restarts, so the sequence
// counter is bumped past any replayed ID to keep new IDs unique.
const versionPrefix = "mv-"

// servingState is the immutable bundle a /v1/predict request works
// against: one model version, its admission-queue batcher, nothing else.
// The active state is swapped with a single atomic pointer store, so a
// request observes exactly one version end to end — a promote or rollback
// concurrent with a request can never mix versions within a batch, because
// a batcher is bound to one model for its whole life.
type servingState struct {
	version string
	model   *core.Model
	batch   *batcher
}

// modelVersion is one registry entry.
type modelVersion struct {
	version     string
	model       *core.Model
	state       *servingState
	fingerprint string
	source      string // "train", "load" or "checkpoint"
	registered  time.Time
}

// registerModelLocked adds m to the registry under its checkpointed
// version ID (assigning a fresh sequential ID when it has none) and
// returns the entry. Callers hold s.mu.
func (s *Server) registerModelLocked(m *core.Model, source string) *modelVersion {
	if m.Version == "" {
		s.modelSeq++
		m.Version = fmt.Sprintf("%s%06d", versionPrefix, s.modelSeq)
	} else if n, ok := parseVersionSeq(m.Version); ok && n > s.modelSeq {
		s.modelSeq = n
	}
	mv := &modelVersion{
		version:     m.Version,
		model:       m,
		state:       s.buildServingStateLocked(m),
		fingerprint: m.Fingerprint(),
		source:      source,
		registered:  s.now(),
	}
	if _, exists := s.versions[mv.version]; !exists {
		s.versionOrder = append(s.versionOrder, mv.version)
	}
	s.versions[mv.version] = mv
	s.evictVersionsLocked()
	return mv
}

// buildServingStateLocked assembles the serving snapshot for m under the
// server's current batching, parallelism and precision configuration. When
// float32 serving is enabled the snapshot carries a frozen copy of the
// model's weights; a model that cannot be frozen (a head layer without a
// float32 form) falls back to the exact float64 engine rather than failing
// registration.
func (s *Server) buildServingStateLocked(m *core.Model) *servingState {
	b := newBatcher(m, s.workersLocked(), s.batchMaxSize, s.batchMaxWait, s.servingMetrics)
	if s.float32Serving {
		if f, err := m.Freeze32(); err == nil {
			b.frozen = f
		}
	}
	return &servingState{
		version: m.Version,
		model:   m,
		batch:   b,
	}
}

// promoteLocked makes version the active serving version, remembering the
// outgoing one as the rollback target. kind labels the swap for telemetry
// ("install", "promote" or "rollback"). The version must be registered;
// callers hold s.mu.
func (s *Server) promoteLocked(version, kind string) {
	mv := s.versions[version]
	if s.activeVersion == version {
		return
	}
	if s.activeVersion != "" {
		s.prevVersion = s.activeVersion
	}
	s.activeVersion = version
	s.model = mv.model
	s.trainedAt = s.now()
	s.serving.Store(mv.state)
	s.modelParams.Set(float64(mv.model.NumParameters()))
	s.servingMetrics.Swapped(kind, version, len(s.versions))
}

// evictVersionsLocked drops the oldest versions beyond maxModelVersions,
// never evicting the active version or the rollback target.
func (s *Server) evictVersionsLocked() {
	for len(s.versionOrder) > maxModelVersions {
		evicted := false
		for i, v := range s.versionOrder {
			if v == s.activeVersion || v == s.prevVersion {
				continue
			}
			delete(s.versions, v)
			s.versionOrder = append(s.versionOrder[:i], s.versionOrder[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
	s.servingMetrics.SetRetained(len(s.versions))
}

// parseVersionSeq extracts the numeric suffix of a generated version ID.
func parseVersionSeq(v string) (int, bool) {
	if !strings.HasPrefix(v, versionPrefix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(v, versionPrefix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// modelVersionInfo is the wire form of one registry entry.
type modelVersionInfo struct {
	Version     string `json:"version"`
	Active      bool   `json:"active"`
	Parameters  int    `json:"parameters"`
	Fingerprint string `json:"fingerprint"`
	Source      string `json:"source"`
	Registered  string `json:"registered"`
}

// ModelsInfo is the wire form of GET/POST /v1/models, shared with the
// client.
type ModelsInfo struct {
	Active   string             `json:"active,omitempty"`
	Previous string             `json:"previous,omitempty"`
	Versions []modelVersionInfo `json:"versions"`
}

// modelsBody is the POST /v1/models request: promote a retained version or
// roll back to the previous active one.
type modelsBody struct {
	Action  string `json:"action"`
	Version string `json:"version,omitempty"`
}

// modelsInfoLocked snapshots the registry for the wire; callers hold s.mu.
func (s *Server) modelsInfoLocked() *ModelsInfo {
	info := &ModelsInfo{Active: s.activeVersion, Previous: s.prevVersion}
	info.Versions = make([]modelVersionInfo, 0, len(s.versions))
	for _, v := range s.versionOrder {
		mv := s.versions[v]
		info.Versions = append(info.Versions, modelVersionInfo{
			Version:     mv.version,
			Active:      mv.version == s.activeVersion,
			Parameters:  mv.model.NumParameters(),
			Fingerprint: mv.fingerprint,
			Source:      mv.source,
			Registered:  mv.registered.UTC().Format(time.RFC3339),
		})
	}
	sort.SliceStable(info.Versions, func(i, j int) bool {
		return info.Versions[i].Version < info.Versions[j].Version
	})
	return info
}

// handleModels serves GET /v1/models: the retained versions, the active
// one and the rollback target.
func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	info := s.modelsInfoLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// handleModelsPost serves POST /v1/models: {"action":"promote",
// "version":"mv-000001"} switches traffic to a retained version (blue/
// green), {"action":"rollback"} instantly restores the previous active
// version. Both are atomic pointer swaps; in-flight predictions finish on
// the version they started with.
func (s *Server) handleModelsPost(w http.ResponseWriter, r *http.Request) {
	var body modelsBody
	if err := decodeBody(w, r, &body); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}

	s.mu.Lock()
	status := http.StatusOK
	var err error
	switch body.Action {
	case "promote":
		if body.Version == "" {
			status, err = http.StatusBadRequest, fmt.Errorf("promote needs a version")
		} else if _, ok := s.versions[body.Version]; !ok {
			status, err = http.StatusNotFound, fmt.Errorf("unknown model version %q", body.Version)
		} else {
			s.promoteLocked(body.Version, "promote")
		}
	case "rollback":
		if s.prevVersion == "" {
			status, err = http.StatusConflict, fmt.Errorf("no previous model version to roll back to")
		} else {
			s.promoteLocked(s.prevVersion, "rollback")
		}
	default:
		status, err = http.StatusBadRequest, fmt.Errorf("unknown action %q (want promote or rollback)", body.Action)
	}
	var ckptErr error
	if err == nil && s.store != nil && s.model != nil {
		// Persist the swap so a restart serves the promoted version.
		ckptErr = s.store.SaveModel(s.model)
	}
	info := s.modelsInfoLocked()
	s.mu.Unlock()

	switch {
	case err != nil:
		writeError(w, status, err)
	case ckptErr != nil:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("swap done but checkpoint failed: %w", ckptErr))
	default:
		writeJSON(w, http.StatusOK, info)
	}
}
