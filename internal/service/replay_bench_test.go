package service

import (
	"encoding/hex"
	"testing"

	"repro/internal/corpus"
	"repro/internal/malgen"
)

// BenchmarkCorpusReplay measures boot-time corpus replay from each storage
// tier over identical samples: the JSONL write-ahead log versus one
// compacted binary segment. Segment replay skips JSON parsing entirely —
// length-prefixed records decode straight from a checksummed mmap-less
// sequential read — and is the reason the compactor exists; the segment
// sub-benchmark should be at least 5x faster than the WAL one.
func BenchmarkCorpusReplay(b *testing.B) {
	d, err := malgen.MSKCFG(malgen.Options{TotalSamples: 120, Seed: 9, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	entries := make([]walEntry, d.Len())
	for i, s := range d.Samples {
		h := s.ACFG.ContentHash()
		entries[i] = walEntry{Family: d.Families[s.Label], Name: s.Name, Hash: hex.EncodeToString(h[:]), ACFG: s.ACFG}
	}
	// seed writes every sample into a fresh state dir, optionally folding
	// the WAL into a segment so replay exercises the binary tier.
	seed := func(b *testing.B, compact bool) string {
		b.Helper()
		dir := b.TempDir()
		st, err := OpenStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.AppendBatch(entries); err != nil {
			b.Fatal(err)
		}
		if compact {
			if err := st.Compact(); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	replay := func(b *testing.B, dir string) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st, err := OpenStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			if _, _, err := st.Replay(func(*corpus.Record, bool) error { n++; return nil }); err != nil {
				b.Fatal(err)
			}
			if n != len(entries) {
				b.Fatalf("replayed %d of %d records", n, len(entries))
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("wal", func(b *testing.B) {
		dir := seed(b, false)
		b.ResetTimer()
		replay(b, dir)
	})
	b.Run("segment", func(b *testing.B) {
		dir := seed(b, true)
		b.ResetTimer()
		replay(b, dir)
	})
}
