package service

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/acfg"
	"repro/internal/core"
	"repro/internal/malgen"
	"repro/internal/obs"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig(2, acfg.NumAttributes)
	cfg.ConvSizes = []int{8, 8}
	cfg.HiddenUnits = 16
	cfg.Conv2DChannels = 4
	cfg.Epochs = 6
	return cfg
}

func newTestServer(t *testing.T, families []string) (*Server, *httptest.Server, *Client) {
	t.Helper()
	// A per-test registry keeps metric assertions independent of other
	// tests sharing obs.Default in the same process.
	srv, err := NewWithRegistry(families, testConfig(), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, NewClient(ts.URL)
}

const chainProgram = `
00401000 mov eax, 1
00401005 mov ebx, 2
0040100a mov ecx, 3
0040100f ret
`

const loopProgram = `
00401000 mov ecx, 9
00401005 add eax, ecx
00401007 xor eax, 3
0040100a dec ecx
0040100c cmp ecx, 0
0040100f jnz 0x401005
00401011 ret
`

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{"only"}, testConfig()); err == nil {
		t.Fatal("want error for single family")
	}
	if _, err := New([]string{"a", "a"}, testConfig()); err == nil {
		t.Fatal("want error for duplicate family")
	}
	if _, err := New([]string{"a", ""}, testConfig()); err == nil {
		t.Fatal("want error for empty family")
	}
	bad := testConfig()
	bad.BatchSize = 0
	if _, err := New([]string{"a", "b"}, bad); err == nil {
		t.Fatal("want error for invalid config")
	}
}

func TestHealthz(t *testing.T) {
	_, _, client := newTestServer(t, []string{"clean", "dirty"})
	if err := client.Health(); err != nil {
		t.Fatal(err)
	}
}

func TestPredictWithoutModel(t *testing.T) {
	_, ts, client := newTestServer(t, []string{"clean", "dirty"})
	_ = ts
	if _, err := client.PredictASM(chainProgram); err == nil {
		t.Fatal("want 503 before training")
	}
}

func TestUploadTrainPredictFlow(t *testing.T) {
	_, _, client := newTestServer(t, []string{"chainy", "loopy"})

	// Upload a few variants of each family (distinct instruction mixes —
	// ingest dedup would collapse byte-identical ACFG content).
	for i := 0; i < 8; i++ {
		if err := client.AddSampleASM("chainy", "", variant(chainProgram, i)); err != nil {
			t.Fatal(err)
		}
		if err := client.AddSampleASM("loopy", "", variant(loopProgram, i)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["chainy"] != 8 || stats["loopy"] != 8 {
		t.Fatalf("stats = %v", stats)
	}

	res, err := client.Train(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 16 || res.Parameters == 0 {
		t.Fatalf("train result = %+v", res)
	}

	pred, err := client.PredictASM(loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Family != "loopy" {
		t.Fatalf("predicted %q, want loopy (%+v)", pred.Family, pred)
	}
	if len(pred.Predictions) != 2 {
		t.Fatalf("predictions = %+v", pred.Predictions)
	}
	if pred.Predictions[0].Probability < pred.Predictions[1].Probability {
		t.Fatal("predictions not sorted")
	}
	// The whole ranked list is a distribution.
	sum := 0.0
	for _, p := range pred.Predictions {
		sum += p.Probability
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probability mass %v", sum)
	}
}

func TestAddSampleValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, []string{"clean", "dirty"})

	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"unknown family", `{"family":"ghost","asm":"00401000 ret"}`, http.StatusBadRequest},
		{"missing payload", `{"family":"clean"}`, http.StatusBadRequest},
		{"bad asm", `{"family":"clean","asm":"garbage"}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/samples", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestTrainRequiresTwoPerFamily(t *testing.T) {
	_, _, client := newTestServer(t, []string{"clean", "dirty"})
	if err := client.AddSampleASM("clean", "", chainProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Train(2, 0); err == nil {
		t.Fatal("want precondition error with underpopulated families")
	}
}

func TestTrainConflictWhileTraining(t *testing.T) {
	_, ts, client := newTestServer(t, []string{"clean", "dirty"})
	for i := 0; i < 2; i++ {
		if err := client.AddSampleASM("clean", "", variant(chainProgram, i)); err != nil {
			t.Fatal(err)
		}
		if err := client.AddSampleASM("dirty", "", variant(loopProgram, i)); err != nil {
			t.Fatal(err)
		}
	}
	// A real in-flight job: an epoch budget large enough that it is still
	// running when the second submission lands (409 is checked before the
	// first response returns, since admission is synchronous).
	job, err := client.StartTrain(context.Background(), 1_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != JobRunning {
		t.Fatalf("job status = %q, want running", job.Status)
	}
	resp, err := http.Post(ts.URL+"/v1/train", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
	if _, err := client.CancelTrain(context.Background(), job.Job); err != nil {
		t.Fatal(err)
	}
	st, err := client.WaitTrain(context.Background(), job.Job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != JobCancelled {
		t.Fatalf("cancelled job status = %q, want cancelled", st.Status)
	}
}

func TestModelEndpoint(t *testing.T) {
	srv, ts, _ := newTestServer(t, []string{"clean", "dirty"})
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Installing a pre-trained model updates metadata.
	cfg := testConfig()
	m, err := core.NewModel(cfg, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	wrong := cfg
	wrong.Classes = 5
	m5, err := core.NewModel(wrong, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadModel(m5); err == nil {
		t.Fatal("want class-count mismatch error")
	}
}

func TestPredictACFGPath(t *testing.T) {
	srv, _, client := newTestServer(t, []string{"clean", "dirty"})
	cfg := testConfig()
	m, err := core.NewModel(cfg, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	a := malgen.GenerateACFG(rand.New(rand.NewSource(2)), malgen.YanProfileFor(0))
	res, err := client.PredictACFG(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != a.NumVertices() {
		t.Fatalf("blocks = %d, want %d", res.Blocks, a.NumVertices())
	}
}

func TestConcurrentPredictions(t *testing.T) {
	srv, _, client := newTestServer(t, []string{"clean", "dirty"})
	m, err := core.NewModel(testConfig(), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.PredictASM(loopProgram)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

// variant splices i+1 extra arithmetic instructions ahead of prog's final
// ret so each variant has genuinely distinct ACFG content. Ingest dedup
// keys on the content hash, which counts instructions per block — comment
// or operand-value tweaks hash identically and would collapse to one
// sample.
func variant(prog string, i int) string {
	lines := strings.Split(strings.TrimSpace(prog), "\n")
	last := strings.Fields(lines[len(lines)-1])
	addr, err := strconv.ParseUint(last[0], 16, 64)
	if err != nil {
		panic("variant: final line has no address: " + lines[len(lines)-1])
	}
	out := append([]string{}, lines[:len(lines)-1]...)
	for k := 0; k <= i; k++ {
		out = append(out, fmt.Sprintf("%08x add eax, 1", addr))
		addr += 2
	}
	out = append(out, fmt.Sprintf("%08x ret", addr))
	return strings.Join(out, "\n") + "\n"
}

// TestSetParallelismRebuildsPool resizes the replica pool on a live server
// and checks pooled predictions still match the model bit-for-bit.
func TestSetParallelismRebuildsPool(t *testing.T) {
	srv, _, client := newTestServer(t, []string{"clean", "dirty"})
	m, err := core.NewModel(testConfig(), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetParallelism(3); err != nil {
		t.Fatal(err)
	}
	a := malgen.GenerateACFG(rand.New(rand.NewSource(5)), malgen.YanProfileFor(1))
	want := m.Predict(a)
	for i := 0; i < 6; i++ { // cycle through every replica in the pool
		res, err := client.PredictACFG(a)
		if err != nil {
			t.Fatal(err)
		}
		for c, p := range res.Predictions {
			label := srv.labelOf[p.Family]
			if p.Probability != want[label] {
				t.Fatalf("request %d rank %d: pooled probability %v != model %v",
					i, c, p.Probability, want[label])
			}
		}
	}
}

// TestPredictsKeepServingDuringTraining checks the serving contract under
// the race detector: while /v1/train runs, concurrent /v1/predict requests
// answer from the previous model's replica pool without blocking.
func TestPredictsKeepServingDuringTraining(t *testing.T) {
	srv, _, client := newTestServer(t, []string{"chainy", "loopy"})
	if err := srv.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := client.AddSampleASM("chainy", "", variant(chainProgram, i)); err != nil {
			t.Fatal(err)
		}
		if err := client.AddSampleASM("loopy", "", variant(loopProgram, i)); err != nil {
			t.Fatal(err)
		}
	}
	initial, err := core.NewModel(testConfig(), []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadModel(initial); err != nil {
		t.Fatal(err)
	}

	trained := make(chan error, 1)
	go func() {
		_, err := client.Train(6, 0)
		trained <- err
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := client.PredictASM(loopProgram); err != nil {
					t.Errorf("predict during training: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := <-trained; err != nil {
		t.Fatalf("train: %v", err)
	}
	// The freshly trained model must now serve through a rebuilt pool.
	if _, err := client.PredictASM(chainProgram); err != nil {
		t.Fatal(err)
	}
}
