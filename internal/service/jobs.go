package service

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/acfg"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Training job modes. Full retrains from scratch on the whole corpus;
// continual fine-tunes the serving model on the samples ingested since the
// last completed job and promotes only past the holdout eval gate.
const (
	TrainModeFull      = "full"
	TrainModeContinual = "continual"
)

// continualHoldoutFraction is the default stratified holdout share used by
// the continual eval gate when the request does not set valFraction.
const continualHoldoutFraction = 0.25

// Job states. A job is created running (admission happens synchronously in
// the submit handler, so there is no queued state) and ends in exactly one
// of the three terminal states.
const (
	JobRunning   = "running"
	JobSucceeded = "succeeded"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// maxJobHistory bounds the number of finished jobs kept for status
// queries; the oldest terminal jobs are evicted first. The running job is
// never evicted.
const maxJobHistory = 32

// TrainJobStatus is the wire form of one training job, served by
// POST /v1/train (202), GET /v1/train/{id} and DELETE /v1/train/{id}, and
// decoded by the client. Loss/accuracy fields describe the most recently
// completed epoch; Result is set only once the job has succeeded.
type TrainJobStatus struct {
	Job             string       `json:"job"`
	Mode            string       `json:"mode,omitempty"`
	Status          string       `json:"status"`
	CancelRequested bool         `json:"cancelRequested,omitempty"`
	Epochs          int          `json:"epochs"`
	Epoch           int          `json:"epoch"`
	Samples         int          `json:"samples"`
	TrainLoss       float64      `json:"trainLoss,omitempty"`
	TrainAcc        float64      `json:"trainAcc,omitempty"`
	HasVal          bool         `json:"hasVal,omitempty"`
	ValLoss         float64      `json:"valLoss,omitempty"`
	ValAcc          float64      `json:"valAcc,omitempty"`
	Error           string       `json:"error,omitempty"`
	Result          *TrainResult `json:"result,omitempty"`
	StartedAt       string       `json:"startedAt,omitempty"`
	FinishedAt      string       `json:"finishedAt,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (s *TrainJobStatus) Terminal() bool {
	return s.Status == JobSucceeded || s.Status == JobFailed || s.Status == JobCancelled
}

// trainJob is the server-side record of one asynchronous training run. The
// immutable identity fields are set at submission; everything under mu is
// updated by the runner goroutine and read by the status handlers.
type trainJob struct {
	id      string
	mode    string // TrainModeFull or TrainModeContinual
	epochs  int    // requested epoch budget
	samples int
	stop    chan struct{} // closed to request cooperative cancellation
	done    chan struct{} // closed when the runner goroutine exits

	mu              sync.Mutex
	state           string
	cancelRequested bool
	epoch           int // completed epochs
	trainLoss       float64
	trainAcc        float64
	hasVal          bool
	valLoss         float64
	valAcc          float64
	errMsg          string
	result          *TrainResult
	startedAt       time.Time
	finishedAt      time.Time
}

// requestCancel flags the job for cooperative cancellation. It returns
// false when the job is already terminal (nothing to cancel).
func (j *trainJob) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobRunning {
		return false
	}
	if !j.cancelRequested {
		j.cancelRequested = true
		close(j.stop)
	}
	return true
}

// observeEpoch records one completed epoch's numbers on the job.
func (j *trainJob) observeEpoch(e core.EpochStats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.epoch = e.Epoch + 1
	j.trainLoss = e.TrainLoss
	j.trainAcc = e.TrainAcc
	j.hasVal = e.HasVal
	j.valLoss = e.ValLoss
	j.valAcc = e.ValAcc
}

// finish moves the job to a terminal state.
func (j *trainJob) finish(state, errMsg string, result *TrainResult, at time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.errMsg = errMsg
	j.result = result
	j.finishedAt = at
}

// status snapshots the job for the wire.
func (j *trainJob) status() *TrainJobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &TrainJobStatus{
		Job:             j.id,
		Mode:            j.mode,
		Status:          j.state,
		CancelRequested: j.cancelRequested,
		Epochs:          j.epochs,
		Epoch:           j.epoch,
		Samples:         j.samples,
		TrainLoss:       j.trainLoss,
		TrainAcc:        j.trainAcc,
		HasVal:          j.hasVal,
		ValLoss:         j.valLoss,
		ValAcc:          j.valAcc,
		Error:           j.errMsg,
		Result:          j.result,
		StartedAt:       j.startedAt.UTC().Format(time.RFC3339Nano),
	}
	if !j.finishedAt.IsZero() {
		st.FinishedAt = j.finishedAt.UTC().Format(time.RFC3339Nano)
	}
	return st
}

// TrainingActive reports whether a training job is currently running.
func (s *Server) TrainingActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curJob != nil
}

// startTrainJobLocked admits a new job (callers hold s.mu and have already
// rejected a concurrent run) and registers it in the history ring.
func (s *Server) startTrainJobLocked(mode string, epochs, samples int) *trainJob {
	s.jobSeq++
	job := &trainJob{
		id:        fmt.Sprintf("train-%06d", s.jobSeq),
		mode:      mode,
		epochs:    epochs,
		samples:   samples,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		state:     JobRunning,
		startedAt: s.now(),
	}
	s.jobs[job.id] = job
	s.jobOrder = append(s.jobOrder, job.id)
	s.curJob = job
	// Evict the oldest terminal jobs beyond the history bound.
	for len(s.jobOrder) > maxJobHistory {
		victim := s.jobs[s.jobOrder[0]]
		if victim == s.curJob {
			break
		}
		delete(s.jobs, s.jobOrder[0])
		s.jobOrder = s.jobOrder[1:]
	}
	return job
}

// runTrainJob is the job goroutine: it owns the whole training lifecycle
// from validation split to model install and checkpoint, and always leaves
// the server idle (curJob nil) and the job terminal on exit.
func (s *Server) runTrainJob(job *trainJob, cfg core.Config, train *dataset.Dataset, valFraction float64, workers int) {
	defer close(job.done)
	s.trainMetrics.RunStarted(train.Len())

	settle := func(state, errMsg string, result *TrainResult) {
		now := s.now()
		job.finish(state, errMsg, result, now)
		s.mu.Lock()
		s.curJob = nil
		s.mu.Unlock()
		outcome := "ok"
		switch state {
		case JobFailed:
			outcome = "error"
		case JobCancelled:
			outcome = "cancelled"
		}
		// The run-level counters predate cancellation and only know
		// ok/error; a cancelled run lands in "error" there, while the job
		// counters carry the distinct outcome.
		s.trainMetrics.RunFinished(state != JobSucceeded)
		s.jobMetrics.Finished(outcome, now.Sub(job.startedAt).Seconds())
	}

	fit := train
	var val *dataset.Dataset
	if valFraction > 0 && valFraction < 1 {
		tr, v, err := train.TrainValSplit(valFraction, cfg.Seed)
		if err != nil {
			settle(JobFailed, err.Error(), nil)
			return
		}
		fit, val = tr, v
	}
	m, err := core.NewModel(cfg, fit.Sizes())
	if err != nil {
		settle(JobFailed, err.Error(), nil)
		return
	}
	// Train through the streaming session: the in-memory snapshot satisfies
	// dataset.SampleSource, and the same path serves disk-backed corpus
	// sources, so production exercises the streaming iterator end to end.
	hist, err := core.TrainStream(m, fit, val, core.TrainOptions{
		Workers: workers,
		Stop:    job.stop,
		Observer: core.EpochObserverFunc(func(e core.EpochStats) {
			s.trainMetrics.ObserveEpoch(epochUpdate(e))
			job.observeEpoch(e)
		}),
	})
	switch {
	case errors.Is(err, core.ErrCancelled):
		settle(JobCancelled, "", nil)
		return
	case err != nil:
		settle(JobFailed, err.Error(), nil)
		return
	}

	s.mu.Lock()
	installErr := s.installModelLocked(m, "train")
	var ckptErr error
	if installErr == nil && s.store != nil {
		ckptErr = s.store.SaveModel(m)
	}
	if installErr == nil {
		// The continual mode fine-tunes on corpus samples past this
		// watermark; a full run covers the whole snapshot.
		s.trainedThrough = train.Len()
	}
	s.mu.Unlock()
	if installErr != nil {
		settle(JobFailed, installErr.Error(), nil)
		return
	}
	if ckptErr != nil {
		// The model is installed and serving, but durability is broken —
		// surface that as a failed job so operators notice.
		settle(JobFailed, fmt.Sprintf("checkpoint model: %v", ckptErr), nil)
		return
	}
	settle(JobSucceeded, "", &TrainResult{
		Mode:       TrainModeFull,
		Promoted:   true,
		Epochs:     len(hist.TrainLoss),
		BestEpoch:  hist.BestEpoch,
		BestLoss:   hist.BestValLoss,
		Samples:    train.Len(),
		Parameters: m.NumParameters(),
	})
}

// cloneModel round-trips a model through its serialized form, yielding an
// independent copy whose parameters can be fine-tuned without touching the
// (immutable, possibly serving) original. The clone's version is cleared so
// the registry assigns a fresh one if it is promoted.
func cloneModel(m *core.Model) (*core.Model, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, fmt.Errorf("clone model: %w", err)
	}
	c, err := core.Load(&buf)
	if err != nil {
		return nil, fmt.Errorf("clone model: %w", err)
	}
	c.Version = ""
	return c, nil
}

// accuracyOn computes argmax accuracy of m over d using the batch engine.
func accuracyOn(m *core.Model, d *dataset.Dataset, workers int) (float64, error) {
	if d.Len() == 0 {
		return 0, fmt.Errorf("empty holdout set")
	}
	as := make([]*acfg.ACFG, d.Len())
	for i, smp := range d.Samples {
		as[i] = smp.ACFG
	}
	probs, err := m.PredictBatch(as, workers)
	if err != nil {
		return 0, err
	}
	hits := 0
	for i, p := range probs {
		best := 0
		for c, v := range p {
			if v > p[best] {
				best = c
			}
		}
		if best == d.Samples[i].Label {
			hits++
		}
	}
	return float64(hits) / float64(d.Len()), nil
}

// runContinualJob fine-tunes a clone of the serving model on the corpus
// increment since the last completed job, then gates promotion on holdout
// accuracy: the tuned model is installed only if it does not regress
// against the baseline (the clone evaluated before fine-tuning, which is
// parameter-identical to the serving model). A rejected run still succeeds
// — Result.Promoted reports the gate's verdict — and leaves the watermark
// untouched so the increment is retried by the next job.
func (s *Server) runContinualJob(job *trainJob, cfg core.Config, base *core.Model, increment, holdout *dataset.Dataset, snapshotLen, workers int) {
	defer close(job.done)
	s.trainMetrics.RunStarted(increment.Len())

	settle := func(state, errMsg string, result *TrainResult) {
		now := s.now()
		job.finish(state, errMsg, result, now)
		s.mu.Lock()
		s.curJob = nil
		s.mu.Unlock()
		outcome := "ok"
		switch state {
		case JobFailed:
			outcome = "error"
		case JobCancelled:
			outcome = "cancelled"
		}
		s.trainMetrics.RunFinished(state != JobSucceeded)
		s.jobMetrics.Finished(outcome, now.Sub(job.startedAt).Seconds())
	}

	m, err := cloneModel(base)
	if err != nil {
		settle(JobFailed, err.Error(), nil)
		return
	}
	// The clone inherits the base model's architecture (it must — the
	// weights match it), but the epoch budget is this job's: the training
	// loop reads it from the model config.
	m.Config.Epochs = cfg.Epochs
	baselineAcc, err := accuracyOn(m, holdout, workers)
	if err != nil {
		settle(JobFailed, fmt.Sprintf("baseline eval: %v", err), nil)
		return
	}

	hist, err := core.TrainStream(m, increment, nil, core.TrainOptions{
		Workers: workers,
		Stop:    job.stop,
		// Keep the base model's fitted attribute statistics: refitting on
		// the (differently distributed) increment would shift every input
		// the inherited parameters were trained against.
		PreserveScaler: true,
		Observer: core.EpochObserverFunc(func(e core.EpochStats) {
			s.trainMetrics.ObserveEpoch(epochUpdate(e))
			job.observeEpoch(e)
		}),
	})
	switch {
	case errors.Is(err, core.ErrCancelled):
		settle(JobCancelled, "", nil)
		return
	case err != nil:
		settle(JobFailed, err.Error(), nil)
		return
	}
	tunedAcc, err := accuracyOn(m, holdout, workers)
	if err != nil {
		settle(JobFailed, fmt.Sprintf("holdout eval: %v", err), nil)
		return
	}

	result := &TrainResult{
		Mode:        TrainModeContinual,
		Epochs:      len(hist.TrainLoss),
		BestEpoch:   hist.BestEpoch,
		BestLoss:    hist.BestValLoss,
		Samples:     increment.Len(),
		NewSamples:  increment.Len(),
		Parameters:  m.NumParameters(),
		HoldoutAcc:  tunedAcc,
		BaselineAcc: baselineAcc,
	}
	if tunedAcc < baselineAcc {
		// Eval gate: the increment made the model worse on held-out data.
		// Keep serving the baseline and leave the watermark so the samples
		// are retried (with more company) by the next job.
		settle(JobSucceeded, "", result)
		return
	}

	s.mu.Lock()
	installErr := s.installModelLocked(m, "continual")
	var ckptErr error
	if installErr == nil && s.store != nil {
		ckptErr = s.store.SaveModel(m)
	}
	if installErr == nil {
		s.trainedThrough = snapshotLen
	}
	s.mu.Unlock()
	if installErr != nil {
		settle(JobFailed, installErr.Error(), nil)
		return
	}
	if ckptErr != nil {
		settle(JobFailed, fmt.Sprintf("checkpoint model: %v", ckptErr), nil)
		return
	}
	result.Promoted = true
	settle(JobSucceeded, "", result)
}

// handleTrain admits an asynchronous training job: it validates the
// request and corpus synchronously, then returns 202 with the job ID while
// the run proceeds in the background. Poll GET /v1/train/{id} for
// progress; DELETE /v1/train/{id} cancels cooperatively.
func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var body trainBody
	// An empty body means "all defaults"; a malformed one is an error even
	// when the request is chunked and carries no Content-Length.
	if err := decodeBody(w, r, &body); err != nil && !errors.Is(err, errEmptyBody) {
		writeError(w, decodeStatus(err), err)
		return
	}
	switch body.Mode {
	case "", TrainModeFull:
		body.Mode = TrainModeFull
	case TrainModeContinual:
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown training mode %q (want %q or %q)", body.Mode, TrainModeFull, TrainModeContinual))
		return
	}

	s.mu.Lock()
	if s.curJob != nil {
		id := s.curJob.id
		s.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("training already in progress (job %s)", id))
		return
	}

	if body.Mode == TrainModeContinual {
		s.admitContinualLocked(w, body)
		return
	}

	// Snapshot the corpus under the lock; train outside it so predictions
	// against the previous model keep serving.
	train := s.corpus.Subset(allIndices(s.corpus.Len()))
	counts := train.CountByClass()
	for i, n := range counts {
		if n < 2 {
			s.mu.Unlock()
			writeError(w, http.StatusPreconditionFailed,
				fmt.Errorf("family %q has %d samples; need at least 2 per family", s.families[i], n))
			return
		}
	}
	cfg := s.cfgTemplate
	if body.Epochs > 0 {
		cfg.Epochs = body.Epochs
	}
	workers := s.workersLocked()
	job := s.startTrainJobLocked(TrainModeFull, cfg.Epochs, train.Len())
	s.mu.Unlock()

	s.jobMetrics.Started()
	go s.runTrainJob(job, cfg, train, body.ValFraction, workers)

	writeJSON(w, http.StatusAccepted, job.status())
}

// admitContinualLocked validates and launches a continual fine-tuning job.
// It is called with s.mu held (no running job) and releases it on every
// path. Preconditions beyond full training's: a trained model must be
// serving, there must be new samples past the watermark, and the corpus
// must support a stratified holdout split for the eval gate.
func (s *Server) admitContinualLocked(w http.ResponseWriter, body trainBody) {
	base := s.model
	if base == nil {
		s.mu.Unlock()
		writeError(w, http.StatusPreconditionFailed,
			fmt.Errorf("continual training needs a trained model; run a full training job first"))
		return
	}
	total := s.corpus.Len()
	if s.trainedThrough >= total {
		s.mu.Unlock()
		writeError(w, http.StatusPreconditionFailed,
			fmt.Errorf("no new samples since the last training job (corpus %d, trained through %d)", total, s.trainedThrough))
		return
	}
	incIdx := make([]int, 0, total-s.trainedThrough)
	for i := s.trainedThrough; i < total; i++ {
		incIdx = append(incIdx, i)
	}
	increment := s.corpus.Subset(incIdx)
	full := s.corpus.Subset(allIndices(total))

	cfg := s.cfgTemplate
	if body.Epochs > 0 {
		cfg.Epochs = body.Epochs
	}
	holdFrac := continualHoldoutFraction
	if body.ValFraction > 0 && body.ValFraction < 1 {
		holdFrac = body.ValFraction
	}
	// The gate's holdout is a stratified slice of the whole corpus (old and
	// new samples alike): the tuned model must not trade established
	// families for the increment's.
	_, holdout, err := full.TrainValSplit(holdFrac, cfg.Seed)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusPreconditionFailed, fmt.Errorf("continual holdout split: %w", err))
		return
	}
	workers := s.workersLocked()
	job := s.startTrainJobLocked(TrainModeContinual, cfg.Epochs, increment.Len())
	s.mu.Unlock()

	s.jobMetrics.Started()
	go s.runContinualJob(job, cfg, base, increment, holdout, total, workers)

	writeJSON(w, http.StatusAccepted, job.status())
}

// handleTrainStatus serves GET /v1/train/{id}.
func (s *Server) handleTrainStatus(w http.ResponseWriter, r *http.Request) {
	job := s.lookupJob(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown training job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

// handleTrainCancel serves DELETE /v1/train/{id}: it requests cooperative
// cancellation (202) or reports the terminal state of an already-finished
// job (200). Cancellation latency is bounded by one training batch.
func (s *Server) handleTrainCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookupJob(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown training job %q", r.PathValue("id")))
		return
	}
	if job.requestCancel() {
		writeJSON(w, http.StatusAccepted, job.status())
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) lookupJob(id string) *trainJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// CancelTraining requests cancellation of the running job, if any, and
// blocks until its goroutine has exited. It is the shutdown path's hook.
func (s *Server) CancelTraining() {
	s.mu.Lock()
	job := s.curJob
	s.mu.Unlock()
	if job == nil {
		return
	}
	job.requestCancel()
	<-job.done
}
