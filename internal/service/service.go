// Package service implements the deployment scenario of the paper's
// conclusion (Section VII): MAGIC as a cloud service. Users upload labeled
// samples to grow a corpus, trigger (re)training, and submit unknown
// disassembly or pre-built ACFGs for classification. The server is a plain
// net/http application with JSON endpoints:
//
//	GET    /healthz         liveness probe
//	GET    /metrics         Prometheus text-format metrics (see internal/obs)
//	GET    /v1/model        current model metadata
//	GET    /v1/stats        corpus statistics per family
//	POST   /v1/samples      add one labeled sample  {family, asm|acfg}
//	POST   /v1/train        start an async training job {epochs} → 202 + job ID
//	GET    /v1/train/{id}   training-job status and per-epoch progress
//	DELETE /v1/train/{id}   cooperative job cancellation
//	POST   /v1/predict      classify one sample     {asm|acfg} → ranked families
//	GET    /v1/models       retained model versions, active + rollback target
//	POST   /v1/models       {action: promote|rollback} blue/green model swap
//
// State is in memory, guarded by a single mutex, and optionally durable:
// AttachStore gives the server a state directory whose corpus WAL and
// model checkpoint are replayed on startup (see Store). Training runs as
// an asynchronous job (one at a time) while predictions against the
// previous model keep serving. Completed models enter a bounded version
// registry (see registry.go); the active version serves /v1/predict
// through an admission queue that coalesces concurrent requests into
// batches for the model's data-parallel inference engine (see batcher.go).
// SetParallelism sizes the inference worker count and the training worker
// count; SetBatching tunes the admission queue.
//
// Every endpoint is instrumented through obs.HTTPMetrics (request counts,
// in-flight gauge, latency histograms, all labeled by route), training
// publishes per-epoch telemetry through obs.TrainingMetrics, and the
// asm→cfg→acfg extraction pipeline reports stage timers. DESIGN.md's
// "Observability" section lists the metric names.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acfg"
	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// Server is the MAGIC classification service.
type Server struct {
	cfgTemplate core.Config

	mu        sync.Mutex
	families  []string
	labelOf   map[string]int
	corpus    *dataset.Dataset
	model     *core.Model
	trainedAt time.Time

	// seen holds the ACFG content hash of every corpus sample, for ingest
	// dedup: re-uploading byte-identical content is acknowledged but not
	// stored twice. Populated from the durable tiers on AttachStore replay.
	seen map[[sha256.Size]byte]struct{}

	// trainedThrough is the corpus length covered by the last completed
	// training job; the continual job mode fine-tunes on samples past it.
	trainedThrough int

	// Asynchronous training jobs: curJob is the single admitted run (nil
	// when idle); jobs/jobOrder keep a bounded history for status queries.
	curJob   *trainJob
	jobs     map[string]*trainJob
	jobOrder []string
	jobSeq   int

	// store, when non-nil, is the durable state directory (corpus WAL +
	// model checkpoint). See AttachStore.
	store *Store

	// Versioned model registry (registry.go): every installed model is
	// retained under a version ID so an operator can blue/green promote or
	// instantly roll back via /v1/models. serving is the lock-free read
	// path for /v1/predict — an atomic snapshot of the active version and
	// its admission-queue batcher, swapped whole on promote/rollback so a
	// request never observes a mix of versions.
	serving       atomic.Pointer[servingState]
	versions      map[string]*modelVersion
	versionOrder  []string // registration order, oldest first
	activeVersion string
	prevVersion   string // rollback target
	modelSeq      int

	// Admission-queue tuning for new serving states (SetBatching).
	batchMaxSize int
	batchMaxWait time.Duration

	// parallelism is the worker count for training batches and batched
	// inference. 0 selects runtime.GOMAXPROCS.
	parallelism int

	// float32Serving routes /v1/predict through a frozen float32 snapshot
	// of each model (SetFloat32Serving). Training and checkpoints stay
	// float64 regardless.
	float32Serving bool

	now func() time.Time

	registry       *obs.Registry
	httpMetrics    *obs.HTTPMetrics
	trainMetrics   *obs.TrainingMetrics
	jobMetrics     *obs.TrainJobMetrics
	servingMetrics *obs.ServingMetrics
	corpusMetrics  *obs.CorpusMetrics
	predictions    *obs.CounterVec // family
	corpusSize     *obs.GaugeVec   // family
	modelParams    *obs.Gauge
}

// New builds a server for a fixed family universe. cfgTemplate supplies the
// model architecture; Classes is overridden to match the families. Metrics
// are published on obs.Default, which is also where the ingestion pipeline
// stage timers live — so /metrics shows the whole system.
func New(families []string, cfgTemplate core.Config) (*Server, error) {
	return NewWithRegistry(families, cfgTemplate, obs.Default())
}

// NewWithRegistry is New with metrics published on a caller-owned
// registry, which tests use for isolation. Note the pipeline stage timers
// always record on obs.Default regardless.
func NewWithRegistry(families []string, cfgTemplate core.Config, reg *obs.Registry) (*Server, error) {
	if len(families) < 2 {
		return nil, fmt.Errorf("service: need at least 2 families, got %d", len(families))
	}
	labelOf := make(map[string]int, len(families))
	for i, f := range families {
		if f == "" {
			return nil, fmt.Errorf("service: empty family name at %d", i)
		}
		if _, dup := labelOf[f]; dup {
			return nil, fmt.Errorf("service: duplicate family %q", f)
		}
		labelOf[f] = i
	}
	cfgTemplate.Classes = len(families)
	if cfgTemplate.AttrDim == 0 {
		cfgTemplate.AttrDim = acfg.NumAttributes
	}
	if err := cfgTemplate.Validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	return &Server{
		cfgTemplate:  cfgTemplate,
		families:     families,
		labelOf:      labelOf,
		corpus:       dataset.New(families),
		seen:         make(map[[sha256.Size]byte]struct{}),
		jobs:         make(map[string]*trainJob),
		versions:     make(map[string]*modelVersion),
		batchMaxSize: DefaultBatchMaxSize,
		batchMaxWait: DefaultBatchMaxWait,
		now:          time.Now,

		registry:       reg,
		httpMetrics:    obs.NewHTTPMetrics(reg),
		trainMetrics:   obs.NewTrainingMetrics(reg),
		jobMetrics:     obs.NewTrainJobMetrics(reg),
		servingMetrics: obs.NewServingMetrics(reg),
		corpusMetrics:  obs.NewCorpusMetrics(reg),
		predictions: reg.CounterVec("magic_predictions_total",
			"Predictions served, by top-ranked family.", "family"),
		corpusSize: reg.GaugeVec("magic_corpus_samples",
			"Labeled samples currently in the corpus, by family.", "family"),
		modelParams: reg.Gauge("magic_model_parameters",
			"Parameter count of the currently installed model (0 when none)."),
	}, nil
}

// Metrics returns the registry this server publishes to, for callers that
// want to mount or inspect it directly.
func (s *Server) Metrics() *obs.Registry { return s.registry }

// SetParallelism sets the worker count used for training batches and
// batched inference. n < 1 selects runtime.GOMAXPROCS. Serving snapshots
// of every retained model version are rebuilt at the new width; in-flight
// predictions finish on the snapshot they started with.
func (s *Server) SetParallelism(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.parallelism = n
	s.rebuildServingLocked()
	return nil
}

// SetFloat32Serving selects the inference tier for /v1/predict: enabled,
// every serving snapshot carries a frozen float32 copy of its model's
// weights and batches run through it (roughly half the memory traffic of
// the float64 engine, at the cost of ≈1e-5 relative drift in the reported
// probabilities — ranked classes are unaffected in practice). Training,
// checkpoints and the /v1/models fingerprints always stay float64, and the
// exact engine remains the default. Serving snapshots of every retained
// version are rebuilt immediately; in-flight predictions finish on the
// snapshot — and therefore the tier — they started with.
func (s *Server) SetFloat32Serving(enable bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.float32Serving = enable
	s.rebuildServingLocked()
}

// SetBatching tunes the prediction admission queue: a batch never exceeds
// maxSize samples (< 1 selects DefaultBatchMaxSize) and a request waits at
// most maxWait for companions (0 disables the window, < 0 selects
// DefaultBatchMaxWait). Applies to every retained version immediately.
func (s *Server) SetBatching(maxSize int, maxWait time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batchMaxSize = maxSize
	s.batchMaxWait = maxWait
	s.rebuildServingLocked()
}

// rebuildServingLocked rebuilds every retained version's serving snapshot
// under the current parallelism and batching configuration, re-pointing
// the active snapshot. Callers hold s.mu.
func (s *Server) rebuildServingLocked() {
	for _, mv := range s.versions {
		mv.state = s.buildServingStateLocked(mv.model)
	}
	if mv, ok := s.versions[s.activeVersion]; ok {
		s.serving.Store(mv.state)
	}
}

// workersLocked resolves the configured parallelism; callers hold s.mu.
func (s *Server) workersLocked() int {
	if s.parallelism > 0 {
		return s.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// LoadModel installs a pre-trained model (e.g. from magic-train).
func (s *Server) LoadModel(m *core.Model) error {
	if m.Config.Classes != len(s.families) {
		return fmt.Errorf("service: model has %d classes, server has %d families",
			m.Config.Classes, len(s.families))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.installModelLocked(m, "load")
}

// installModelLocked registers m as a new version under the given source
// tag ("train", "load" or "checkpoint") and makes it the serving model;
// callers hold s.mu. The error return is kept for call-site symmetry —
// registration itself cannot fail.
func (s *Server) installModelLocked(m *core.Model, source string) error {
	mv := s.registerModelLocked(m, source)
	s.promoteLocked(mv.version, "install")
	return nil
}

// Handler returns the HTTP routing for the service. Every route is
// wrapped in the metrics middleware, labeled by its path pattern (bounded
// cardinality), including /metrics itself.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.Handle(pattern, s.httpMetrics.WrapFunc(endpoint, h))
	}
	handle("GET /healthz", "/healthz", s.handleHealthz)
	handle("GET /metrics", "/metrics", s.registry.Handler().ServeHTTP)
	handle("GET /v1/model", "/v1/model", s.handleModel)
	handle("GET /v1/stats", "/v1/stats", s.handleStats)
	handle("POST /v1/samples", "/v1/samples", s.handleAddSample)
	handle("POST /v1/train", "/v1/train", s.handleTrain)
	handle("GET /v1/train/{id}", "/v1/train/{id}", s.handleTrainStatus)
	handle("DELETE /v1/train/{id}", "/v1/train/{id}", s.handleTrainCancel)
	handle("POST /v1/predict", "/v1/predict", s.handlePredict)
	handle("GET /v1/models", "/v1/models", s.handleModels)
	handle("POST /v1/models", "/v1/models", s.handleModelsPost)
	return mux
}

// sampleBody is the wire form of an uploaded sample: either disassembly
// text or a pre-built ACFG.
type sampleBody struct {
	Family string     `json:"family,omitempty"`
	ASM    string     `json:"asm,omitempty"`
	ACFG   *acfg.ACFG `json:"acfg,omitempty"`
	Name   string     `json:"name,omitempty"`
}

// trainBody tunes a training request. Mode selects full retraining
// (default) or continual fine-tuning on samples since the last job; for
// continual jobs ValFraction sets the eval gate's holdout share.
type trainBody struct {
	Mode        string  `json:"mode,omitempty"`
	Epochs      int     `json:"epochs,omitempty"`
	ValFraction float64 `json:"valFraction,omitempty"`
}

// prediction is one ranked family in a predict response.
type prediction struct {
	Family      string  `json:"family"`
	Probability float64 `json:"probability"`
}

type predictResponse struct {
	Family       string       `json:"family"`
	Blocks       int          `json:"blocks"`
	ModelVersion string       `json:"modelVersion,omitempty"`
	Predictions  []prediction `json:"predictions"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// healthzResponse is the /healthz payload. ModelVersion is empty until a
// model is serving; the gateway uses it to learn the fleet's active
// version, and operators get a one-call liveness + readiness view.
type healthzResponse struct {
	Status        string `json:"status"`
	ModelVersion  string `json:"model_version,omitempty"`
	CorpusSamples int    `json:"corpus_samples"`
	// Storage-tier breakdown, present only when a state dir is attached:
	// how much of the corpus lives in compacted segments vs the WAL tail.
	CorpusSegments    int `json:"corpus_segments,omitempty"`
	SegmentSamples    int `json:"segment_samples,omitempty"`
	WALSamples        int `json:"wal_samples,omitempty"`
	CorpusCompactions int `json:"corpus_compactions,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := healthzResponse{
		Status:        "ok",
		ModelVersion:  s.activeVersion,
		CorpusSamples: s.corpus.Len(),
	}
	store := s.store
	s.mu.Unlock()
	if store != nil {
		stats := store.Stats()
		resp.CorpusSegments = stats.Segments
		resp.SegmentSamples = stats.SegmentRecords
		resp.WALSamples = stats.WALRecords
		resp.CorpusCompactions = stats.Compactions
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := map[string]any{
		"families": s.families,
		"trained":  s.model != nil,
		"training": s.curJob != nil,
	}
	if s.curJob != nil {
		resp["trainingJob"] = s.curJob.id
	}
	if s.model != nil {
		resp["parameters"] = s.model.NumParameters()
		resp["architecture"] = s.model.String()
		resp["trainedAt"] = s.trainedAt.UTC().Format(time.RFC3339)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	counts := s.corpus.CountByClass()
	perFamily := make(map[string]int, len(s.families))
	for i, f := range s.families {
		perFamily[f] = counts[i]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"samples":  s.corpus.Len(),
		"families": perFamily,
	})
}

func (s *Server) handleAddSample(w http.ResponseWriter, r *http.Request) {
	var body sampleBody
	if err := decodeBody(w, r, &body); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	label, ok := s.labelOf[body.Family]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown family %q", body.Family))
		return
	}
	a, err := s.extract(&body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hash := a.ContentHash()
	s.mu.Lock()
	defer s.mu.Unlock()
	name := body.Name
	if name == "" {
		name = fmt.Sprintf("%s-%06d", body.Family, s.corpus.Len())
	}
	// Ingest dedup: byte-identical ACFG content is acknowledged but stored
	// once — re-uploads after client retries or corpus re-imports must not
	// inflate the training set.
	if _, dup := s.seen[hash]; dup {
		s.corpusMetrics.Deduplicated()
		writeJSON(w, http.StatusCreated, map[string]any{
			"name":         name,
			"samples":      s.corpus.Len(),
			"deduplicated": true,
		})
		return
	}
	// Durability first: a sample is acknowledged only once it is in the
	// WAL, so an acknowledged upload survives a crash.
	if s.store != nil {
		if err := s.store.AppendSample(body.Family, name, hash, a); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	s.seen[hash] = struct{}{}
	s.corpus.Add(&dataset.Sample{Name: name, Label: label, ACFG: a})
	s.corpusSize.With(body.Family).Set(float64(s.corpus.CountByClass()[label]))
	s.publishCorpusGaugesLocked()
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":    name,
		"samples": s.corpus.Len(),
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var body sampleBody
	if err := decodeBody(w, r, &body); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	a, err := s.extract(&body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Lock-free snapshot: the request is pinned to one model version for
	// its whole life, however many promotes or rollbacks land meanwhile.
	sv := s.serving.Load()
	if sv == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no model trained yet"))
		return
	}
	probs, err := sv.batch.predict(r.Context(), a)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client went away while the request was queued; 499-style
			// semantics, but stick to a standard code.
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	preds := make([]prediction, len(probs))
	for i, p := range probs {
		preds[i] = prediction{Family: s.families[i], Probability: p}
	}
	sort.SliceStable(preds, func(i, j int) bool { return preds[i].Probability > preds[j].Probability })
	s.predictions.With(preds[0].Family).Inc()
	writeJSON(w, http.StatusOK, predictResponse{
		Family:       preds[0].Family,
		Blocks:       a.NumVertices(),
		ModelVersion: sv.version,
		Predictions:  preds,
	})
}

// extract converts an uploaded body into an ACFG, running the disassembly
// pipeline when asm text was supplied.
func (s *Server) extract(body *sampleBody) (*acfg.ACFG, error) {
	switch {
	case body.ACFG != nil && body.ASM != "":
		return nil, fmt.Errorf("supply either asm or acfg, not both")
	case body.ACFG != nil:
		if body.ACFG.Attrs.Cols != s.cfgTemplate.AttrDim {
			return nil, fmt.Errorf("acfg has %d attribute columns, want %d",
				body.ACFG.Attrs.Cols, s.cfgTemplate.AttrDim)
		}
		return body.ACFG, nil
	case strings.TrimSpace(body.ASM) != "":
		prog, err := asm.ParseString(body.ASM)
		if err != nil {
			return nil, fmt.Errorf("parse asm: %w", err)
		}
		c := cfg.Build(prog)
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("build cfg: %w", err)
		}
		return acfg.FromCFG(c), nil
	default:
		return nil, fmt.Errorf("missing asm or acfg payload")
	}
}

// epochUpdate bridges core's per-epoch stats to the obs telemetry struct
// (obs cannot import core, being dependency-free).
func epochUpdate(e core.EpochStats) obs.EpochUpdate {
	return obs.EpochUpdate{
		Epoch:        e.Epoch,
		TrainLoss:    e.TrainLoss,
		TrainAcc:     e.TrainAcc,
		HasVal:       e.HasVal,
		ValLoss:      e.ValLoss,
		ValAcc:       e.ValAcc,
		LearningRate: e.LearningRate,
		Duration:     e.Duration,
		BestEpoch:    e.BestEpoch,
	}
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// errEmptyBody marks a request whose body held no JSON value at all (as
// opposed to a malformed one). Handlers that accept an absent body — like
// /v1/train, where it means "all defaults" — test for it with errors.Is;
// note ContentLength is useless for that distinction, since chunked
// requests carry -1 whether or not bytes follow.
var errEmptyBody = errors.New("empty request body")

// maxBodyBytes bounds every request body; oversized bodies surface as 413.
const maxBodyBytes = 16 << 20

// decodeBody decodes a JSON request body into v. It passes the real
// ResponseWriter to MaxBytesReader so the connection is closed after an
// overrun, preventing a client from streaming the rest of an oversized
// body into a dead handler.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			// Decode returns bare io.EOF only when no bytes preceded it:
			// the body was empty. Truncated JSON is io.ErrUnexpectedEOF.
			return errEmptyBody
		}
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

// decodeStatus maps a decodeBody error to its HTTP status: 413 when the
// body blew the size cap, else 400.
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
