package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/acfg"
)

// Client is a typed HTTP client for the MAGIC service, used by
// cmd/magic-server's client mode and by integration tests.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// DefaultTimeout bounds every client request. It is generous because
// /v1/train runs a whole training loop synchronously; callers with
// stricter needs should pass their own client via NewClientWithHTTP.
const DefaultTimeout = 5 * time.Minute

// NewClient builds a client for the given base URL (e.g.
// "http://localhost:8080") with a dedicated *http.Client bounded by
// DefaultTimeout — never http.DefaultClient, which has no timeout at all.
func NewClient(baseURL string) *Client {
	return NewClientWithHTTP(baseURL, &http.Client{Timeout: DefaultTimeout})
}

// NewClientWithHTTP builds a client that issues requests through hc,
// the escape hatch for custom timeouts, transports, or test doubles.
func NewClientWithHTTP(baseURL string, hc *http.Client) *Client {
	return &Client{BaseURL: baseURL, HTTP: hc}
}

// Health checks the liveness endpoint.
func (c *Client) Health() error {
	resp, err := c.HTTP.Get(c.BaseURL + "/healthz")
	if err != nil {
		return fmt.Errorf("service client: health: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service client: health status %d", resp.StatusCode)
	}
	return nil
}

// AddSampleASM uploads one labeled disassembly listing.
func (c *Client) AddSampleASM(family, name, asmText string) error {
	_, err := c.post("/v1/samples", sampleBody{Family: family, Name: name, ASM: asmText}, http.StatusCreated)
	return err
}

// AddSampleACFG uploads one labeled pre-built ACFG.
func (c *Client) AddSampleACFG(family, name string, a *acfg.ACFG) error {
	_, err := c.post("/v1/samples", sampleBody{Family: family, Name: name, ACFG: a}, http.StatusCreated)
	return err
}

// TrainResult summarizes a server-side training run.
type TrainResult struct {
	Epochs     int     `json:"epochs"`
	BestEpoch  int     `json:"bestEpoch"`
	BestLoss   float64 `json:"bestLoss"`
	Samples    int     `json:"samples"`
	Parameters int     `json:"parameters"`
}

// Train triggers (re)training on the accumulated corpus.
func (c *Client) Train(epochs int, valFraction float64) (*TrainResult, error) {
	raw, err := c.post("/v1/train", trainBody{Epochs: epochs, ValFraction: valFraction}, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var res TrainResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("service client: decode train result: %w", err)
	}
	return &res, nil
}

// Prediction is one ranked family.
type Prediction = prediction

// PredictResult is a classification response.
type PredictResult struct {
	Family      string       `json:"family"`
	Blocks      int          `json:"blocks"`
	Predictions []Prediction `json:"predictions"`
}

// PredictASM classifies a disassembly listing.
func (c *Client) PredictASM(asmText string) (*PredictResult, error) {
	return c.predict(sampleBody{ASM: asmText})
}

// PredictACFG classifies a pre-built ACFG.
func (c *Client) PredictACFG(a *acfg.ACFG) (*PredictResult, error) {
	return c.predict(sampleBody{ACFG: a})
}

func (c *Client) predict(body sampleBody) (*PredictResult, error) {
	raw, err := c.post("/v1/predict", body, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var res PredictResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("service client: decode prediction: %w", err)
	}
	return &res, nil
}

// Stats fetches the per-family corpus counts.
func (c *Client) Stats() (map[string]int, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("service client: stats: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var body struct {
		Families map[string]int `json:"families"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("service client: decode stats: %w", err)
	}
	return body.Families, nil
}

func (c *Client) post(path string, body any, wantStatus int) ([]byte, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("service client: encode: %w", err)
	}
	resp, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("service client: post %s: %w", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, fmt.Errorf("service client: read %s: %w", path, err)
	}
	if resp.StatusCode != wantStatus {
		var e errorResponse
		if json.Unmarshal(buf.Bytes(), &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("service client: %s: %s (status %d)", path, e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("service client: %s: status %d", path, resp.StatusCode)
	}
	return buf.Bytes(), nil
}
