package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/acfg"
)

// Client is a typed HTTP client for the MAGIC service, used by
// cmd/magic-server's client mode, cmd/magic-predict's -server mode, and
// integration tests. Every method has a context-aware form; the plain
// forms delegate with context.Background(). Requests that die on a
// connection error or a 503 are retried with exponential backoff, bounded
// by MaxRetries.
type Client struct {
	BaseURL string
	HTTP    *http.Client

	// MaxRetries caps how many times a request is retried after a
	// connection error or a 503 response. 0 selects DefaultMaxRetries;
	// negative disables retries.
	MaxRetries int
	// RetryBackoff is the first retry's delay; it doubles per attempt.
	// 0 selects DefaultRetryBackoff.
	RetryBackoff time.Duration
}

// DefaultTimeout bounds every individual client request. Training no
// longer runs inside one request (POST /v1/train answers immediately with
// a job ID), so this only needs to cover uploads and predictions; it is
// still generous for large disassembly payloads on slow machines.
const DefaultTimeout = 5 * time.Minute

// Retry defaults: 3 retries at 100ms, 200ms, 400ms keeps transient
// connection drops and 503s invisible to callers without stalling hard
// failures for more than ~1s.
const (
	DefaultMaxRetries   = 3
	DefaultRetryBackoff = 100 * time.Millisecond
)

// NewClient builds a client for the given base URL (e.g.
// "http://localhost:8080") with a dedicated *http.Client bounded by
// DefaultTimeout — never http.DefaultClient, which has no timeout at all.
func NewClient(baseURL string) *Client {
	return NewClientWithHTTP(baseURL, &http.Client{Timeout: DefaultTimeout})
}

// NewClientWithHTTP builds a client that issues requests through hc,
// the escape hatch for custom timeouts, transports, or test doubles.
func NewClientWithHTTP(baseURL string, hc *http.Client) *Client {
	return &Client{BaseURL: baseURL, HTTP: hc}
}

// Health checks the liveness endpoint.
func (c *Client) Health() error { return c.HealthContext(context.Background()) }

// HealthContext is Health bounded by ctx.
func (c *Client) HealthContext(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodGet, "/healthz", nil, http.StatusOK)
	return err
}

// HealthStatus is the decoded /healthz payload. The corpus tier fields are
// present only when the server has a durable state directory attached.
type HealthStatus struct {
	Status        string `json:"status"`
	ModelVersion  string `json:"model_version,omitempty"`
	CorpusSamples int    `json:"corpus_samples"`
	// CorpusSegments/SegmentSamples describe the compacted binary tier;
	// WALSamples counts records still in the write-ahead log.
	CorpusSegments    int `json:"corpus_segments,omitempty"`
	SegmentSamples    int `json:"segment_samples,omitempty"`
	WALSamples        int `json:"wal_samples,omitempty"`
	CorpusCompactions int `json:"corpus_compactions,omitempty"`
}

// HealthInfo fetches the full health payload: liveness plus the serving
// model version and corpus size.
func (c *Client) HealthInfo() (*HealthStatus, error) {
	return c.HealthInfoContext(context.Background())
}

// HealthInfoContext is HealthInfo bounded by ctx.
func (c *Client) HealthInfoContext(ctx context.Context) (*HealthStatus, error) {
	raw, err := c.do(ctx, http.MethodGet, "/healthz", nil, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var hs HealthStatus
	if err := json.Unmarshal(raw, &hs); err != nil {
		return nil, fmt.Errorf("service client: decode health: %w", err)
	}
	return &hs, nil
}

// AddSampleASM uploads one labeled disassembly listing.
func (c *Client) AddSampleASM(family, name, asmText string) error {
	return c.AddSampleASMContext(context.Background(), family, name, asmText)
}

// AddSampleASMContext is AddSampleASM bounded by ctx.
func (c *Client) AddSampleASMContext(ctx context.Context, family, name, asmText string) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/samples",
		sampleBody{Family: family, Name: name, ASM: asmText}, http.StatusCreated)
	return err
}

// AddSampleACFG uploads one labeled pre-built ACFG.
func (c *Client) AddSampleACFG(family, name string, a *acfg.ACFG) error {
	return c.AddSampleACFGContext(context.Background(), family, name, a)
}

// AddSampleACFGContext is AddSampleACFG bounded by ctx.
func (c *Client) AddSampleACFGContext(ctx context.Context, family, name string, a *acfg.ACFG) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/samples",
		sampleBody{Family: family, Name: name, ACFG: a}, http.StatusCreated)
	return err
}

// TrainResult summarizes a completed server-side training run. Mode and
// Promoted describe what the job did with the model: a full run always
// installs it, while a continual run installs only when HoldoutAcc did not
// regress below BaselineAcc (the serving model's accuracy on the same
// holdout before fine-tuning).
type TrainResult struct {
	Mode        string  `json:"mode,omitempty"`
	Promoted    bool    `json:"promoted"`
	Epochs      int     `json:"epochs"`
	BestEpoch   int     `json:"bestEpoch"`
	BestLoss    float64 `json:"bestLoss"`
	Samples     int     `json:"samples"`
	NewSamples  int     `json:"newSamples,omitempty"`
	Parameters  int     `json:"parameters"`
	HoldoutAcc  float64 `json:"holdoutAcc,omitempty"`
	BaselineAcc float64 `json:"baselineAcc,omitempty"`
}

// trainPollInterval paces WaitTrain's status polling.
const trainPollInterval = 25 * time.Millisecond

// StartTrain submits an asynchronous training job and returns its initial
// status (202) without waiting for the run.
func (c *Client) StartTrain(ctx context.Context, epochs int, valFraction float64) (*TrainJobStatus, error) {
	raw, err := c.do(ctx, http.MethodPost, "/v1/train",
		trainBody{Epochs: epochs, ValFraction: valFraction}, http.StatusAccepted)
	if err != nil {
		return nil, err
	}
	return decodeJobStatus(raw)
}

// StartContinual submits an asynchronous continual fine-tuning job: the
// serving model is tuned on samples ingested since the last completed job
// and promoted only if holdout accuracy does not regress. valFraction sets
// the holdout share (0 uses the server default).
func (c *Client) StartContinual(ctx context.Context, epochs int, valFraction float64) (*TrainJobStatus, error) {
	raw, err := c.do(ctx, http.MethodPost, "/v1/train",
		trainBody{Mode: TrainModeContinual, Epochs: epochs, ValFraction: valFraction}, http.StatusAccepted)
	if err != nil {
		return nil, err
	}
	return decodeJobStatus(raw)
}

// TrainStatus fetches one job's current status.
func (c *Client) TrainStatus(ctx context.Context, id string) (*TrainJobStatus, error) {
	raw, err := c.do(ctx, http.MethodGet, "/v1/train/"+url.PathEscape(id), nil, http.StatusOK)
	if err != nil {
		return nil, err
	}
	return decodeJobStatus(raw)
}

// CancelTrain requests cooperative cancellation of a job. It returns the
// job's status at the time of the request; cancellation completes
// asynchronously (poll TrainStatus or WaitTrain for the terminal state).
func (c *Client) CancelTrain(ctx context.Context, id string) (*TrainJobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.BaseURL+"/v1/train/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, fmt.Errorf("service client: cancel train: %w", err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, fmt.Errorf("service client: cancel train: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, fmt.Errorf("service client: cancel train: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nil, statusError("/v1/train/"+id, buf.Bytes(), resp.StatusCode)
	}
	return decodeJobStatus(buf.Bytes())
}

// WaitTrain polls a job until it reaches a terminal state or ctx expires.
func (c *Client) WaitTrain(ctx context.Context, id string) (*TrainJobStatus, error) {
	for {
		st, err := c.TrainStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(trainPollInterval):
		}
	}
}

// Train triggers (re)training on the accumulated corpus and blocks until
// the run finishes: it submits an asynchronous job and polls it to a
// terminal state, so it works for runs of any length without an HTTP
// request outliving the client timeout.
func (c *Client) Train(epochs int, valFraction float64) (*TrainResult, error) {
	return c.TrainContext(context.Background(), epochs, valFraction)
}

// TrainContext is Train bounded by ctx.
func (c *Client) TrainContext(ctx context.Context, epochs int, valFraction float64) (*TrainResult, error) {
	job, err := c.StartTrain(ctx, epochs, valFraction)
	if err != nil {
		return nil, err
	}
	st, err := c.WaitTrain(ctx, job.Job)
	if err != nil {
		return nil, err
	}
	switch st.Status {
	case JobSucceeded:
		if st.Result == nil {
			return nil, fmt.Errorf("service client: job %s succeeded without a result", st.Job)
		}
		return st.Result, nil
	case JobCancelled:
		return nil, fmt.Errorf("service client: training job %s was cancelled", st.Job)
	default:
		return nil, fmt.Errorf("service client: training job %s failed: %s", st.Job, st.Error)
	}
}

// ContinualTrain submits a continual fine-tuning job and blocks until it
// reaches a terminal state, returning the result (whose Promoted field
// reports the eval gate's verdict).
func (c *Client) ContinualTrain(ctx context.Context, epochs int, valFraction float64) (*TrainResult, error) {
	job, err := c.StartContinual(ctx, epochs, valFraction)
	if err != nil {
		return nil, err
	}
	st, err := c.WaitTrain(ctx, job.Job)
	if err != nil {
		return nil, err
	}
	switch st.Status {
	case JobSucceeded:
		if st.Result == nil {
			return nil, fmt.Errorf("service client: job %s succeeded without a result", st.Job)
		}
		return st.Result, nil
	case JobCancelled:
		return nil, fmt.Errorf("service client: training job %s was cancelled", st.Job)
	default:
		return nil, fmt.Errorf("service client: training job %s failed: %s", st.Job, st.Error)
	}
}

func decodeJobStatus(raw []byte) (*TrainJobStatus, error) {
	var st TrainJobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("service client: decode train job status: %w", err)
	}
	return &st, nil
}

// Prediction is one ranked family.
type Prediction = prediction

// PredictResult is a classification response.
type PredictResult struct {
	Family       string       `json:"family"`
	Blocks       int          `json:"blocks"`
	ModelVersion string       `json:"modelVersion,omitempty"`
	Predictions  []Prediction `json:"predictions"`
}

// PredictASM classifies a disassembly listing.
func (c *Client) PredictASM(asmText string) (*PredictResult, error) {
	return c.PredictASMContext(context.Background(), asmText)
}

// PredictASMContext is PredictASM bounded by ctx.
func (c *Client) PredictASMContext(ctx context.Context, asmText string) (*PredictResult, error) {
	return c.predict(ctx, sampleBody{ASM: asmText})
}

// PredictACFG classifies a pre-built ACFG.
func (c *Client) PredictACFG(a *acfg.ACFG) (*PredictResult, error) {
	return c.PredictACFGContext(context.Background(), a)
}

// PredictACFGContext is PredictACFG bounded by ctx.
func (c *Client) PredictACFGContext(ctx context.Context, a *acfg.ACFG) (*PredictResult, error) {
	return c.predict(ctx, sampleBody{ACFG: a})
}

func (c *Client) predict(ctx context.Context, body sampleBody) (*PredictResult, error) {
	raw, err := c.do(ctx, http.MethodPost, "/v1/predict", body, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var res PredictResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("service client: decode prediction: %w", err)
	}
	return &res, nil
}

// ListModels fetches the retained model versions, the active one and the
// rollback target.
func (c *Client) ListModels(ctx context.Context) (*ModelsInfo, error) {
	raw, err := c.do(ctx, http.MethodGet, "/v1/models", nil, http.StatusOK)
	if err != nil {
		return nil, err
	}
	return decodeModelsInfo(raw)
}

// PromoteModel switches serving traffic to a retained version (blue/green)
// and returns the resulting registry state.
func (c *Client) PromoteModel(ctx context.Context, version string) (*ModelsInfo, error) {
	raw, err := c.do(ctx, http.MethodPost, "/v1/models",
		modelsBody{Action: "promote", Version: version}, http.StatusOK)
	if err != nil {
		return nil, err
	}
	return decodeModelsInfo(raw)
}

// RollbackModel instantly restores the previously active model version.
func (c *Client) RollbackModel(ctx context.Context) (*ModelsInfo, error) {
	raw, err := c.do(ctx, http.MethodPost, "/v1/models",
		modelsBody{Action: "rollback"}, http.StatusOK)
	if err != nil {
		return nil, err
	}
	return decodeModelsInfo(raw)
}

func decodeModelsInfo(raw []byte) (*ModelsInfo, error) {
	var info ModelsInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		return nil, fmt.Errorf("service client: decode models: %w", err)
	}
	return &info, nil
}

// Forward issues a pre-encoded JSON payload to path, expecting wantStatus,
// under the client's usual retry policy. magic-gateway uses it to proxy
// request bodies verbatim without a decode/re-encode round trip.
func (c *Client) Forward(ctx context.Context, method, path string, payload []byte, wantStatus int) ([]byte, error) {
	return c.doRaw(ctx, method, path, payload, wantStatus)
}

// Stats fetches the per-family corpus counts.
func (c *Client) Stats() (map[string]int, error) {
	return c.StatsContext(context.Background())
}

// StatsContext is Stats bounded by ctx.
func (c *Client) StatsContext(ctx context.Context) (map[string]int, error) {
	raw, err := c.do(ctx, http.MethodGet, "/v1/stats", nil, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var body struct {
		Families map[string]int `json:"families"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		return nil, fmt.Errorf("service client: decode stats: %w", err)
	}
	return body.Families, nil
}

// retryBudget resolves the configured retry knobs.
func (c *Client) retryBudget() (retries int, backoff time.Duration) {
	retries = c.MaxRetries
	if retries == 0 {
		retries = DefaultMaxRetries
	}
	if retries < 0 {
		retries = 0
	}
	backoff = c.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	return retries, backoff
}

// do issues one JSON request (body nil for bodyless methods) and returns
// the response bytes when the status matches wantStatus.
func (c *Client) do(ctx context.Context, method, path string, body any, wantStatus int) ([]byte, error) {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return nil, fmt.Errorf("service client: encode: %w", err)
		}
	}
	return c.doRaw(ctx, method, path, payload, wantStatus)
}

// doRaw is do with a pre-encoded payload. Connection errors and 503
// responses are retried with exponential backoff up to the client's retry
// budget; any other status short-circuits with the server's error message
// as an *APIError. Context cancellation is never retried: a cancelled
// context aborts immediately, even mid-backoff.
func (c *Client) doRaw(ctx context.Context, method, path string, payload []byte, wantStatus int) ([]byte, error) {
	retries, backoff := c.retryBudget()
	var lastErr error
	for attempt := 0; ; attempt++ {
		raw, status, err := c.roundTrip(ctx, method, path, payload)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, fmt.Errorf("service client: %s %s: %w", method, path, err)
			}
			lastErr = fmt.Errorf("service client: %s %s: %w", method, path, err)
		case status == wantStatus:
			return raw, nil
		case status == http.StatusServiceUnavailable && wantStatus != http.StatusServiceUnavailable:
			lastErr = statusError(path, raw, status)
		default:
			return nil, statusError(path, raw, status)
		}
		if attempt >= retries {
			return nil, lastErr
		}
		if err := sleepBackoff(ctx, backoff<<attempt); err != nil {
			return nil, fmt.Errorf("service client: %s %s: %w", method, path, err)
		}
	}
}

// sleepBackoff blocks for d or until ctx is cancelled, whichever comes
// first, returning the context's error in the latter case. An
// already-cancelled context returns immediately without arming a timer,
// and the timer is always stopped — a retry loop under a cancelled
// context neither sleeps out its backoff nor leaks timers.
func sleepBackoff(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// roundTrip performs one HTTP exchange and reads the full response body.
func (c *Client) roundTrip(ctx context.Context, method, path string, payload []byte) ([]byte, int, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, 0, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), resp.StatusCode, nil
}

// APIError is a response whose status did not match the caller's
// expectation. Callers that care which status came back — like the
// gateway, which relays a backend's 4xx to its own client instead of
// failing over — unwrap it with errors.As.
type APIError struct {
	Path    string
	Status  int
	Message string // the server's JSON error message, when one was sent
	Body    []byte // the raw response body
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("service client: %s: %s (status %d)", e.Path, e.Message, e.Status)
	}
	return fmt.Sprintf("service client: %s: status %d", e.Path, e.Status)
}

// statusError shapes an unexpected-status error, surfacing the server's
// JSON error message when one was sent.
func statusError(path string, raw []byte, status int) error {
	e := &APIError{Path: path, Status: status, Body: raw}
	var body errorResponse
	if json.Unmarshal(raw, &body) == nil {
		e.Message = body.Error
	}
	return e
}
