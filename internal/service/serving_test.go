package service

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/acfg"
	"repro/internal/core"
	"repro/internal/malgen"
	"repro/internal/obs"
)

// testModel builds a small model whose weights are driven by seed, so two
// different seeds give observably different predictions.
func testModel(t *testing.T, seed int64) *core.Model {
	t.Helper()
	cfg := testConfig()
	cfg.Seed = seed
	m, err := core.NewModel(cfg, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testACFG(seed int64) *acfg.ACFG {
	return malgen.GenerateACFG(rand.New(rand.NewSource(seed)), malgen.YanProfileFor(0))
}

// TestBatcherBitIdentical checks the admission queue's core numerical
// contract: predictions that flowed through a coalesced batch are
// bit-identical to calling Predict serially, at every batching
// configuration.
func TestBatcherBitIdentical(t *testing.T) {
	m := testModel(t, 3)
	samples := make([]*acfg.ACFG, 16)
	want := make([][]float64, len(samples))
	for i := range samples {
		samples[i] = testACFG(int64(i + 1))
		want[i] = m.Predict(samples[i])
	}
	for _, tc := range []struct {
		name    string
		maxSize int
		maxWait time.Duration
	}{
		{"window", 8, 2 * time.Millisecond},
		{"no window", 8, 0},
		{"batch of one", 1, time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := newBatcher(m, 2, tc.maxSize, tc.maxWait, obs.NewServingMetrics(obs.NewRegistry()))
			var wg sync.WaitGroup
			got := make([][]float64, len(samples))
			errs := make([]error, len(samples))
			for i := range samples {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i], errs[i] = b.predict(context.Background(), samples[i])
				}(i)
			}
			wg.Wait()
			for i := range samples {
				if errs[i] != nil {
					t.Fatalf("sample %d: %v", i, errs[i])
				}
				if len(got[i]) != len(want[i]) {
					t.Fatalf("sample %d: %d probs, want %d", i, len(got[i]), len(want[i]))
				}
				for c := range want[i] {
					if got[i][c] != want[i][c] {
						t.Fatalf("sample %d class %d: batched %v != serial %v", i, c, got[i][c], want[i][c])
					}
				}
			}
		})
	}
}

// TestBatcherCoalesces drives concurrent requests through a batcher with a
// generous window and checks they actually shared batches rather than each
// paying its own inference sweep.
func TestBatcherCoalesces(t *testing.T) {
	m := testModel(t, 4)
	reg := obs.NewRegistry()
	b := newBatcher(m, 2, 32, 50*time.Millisecond, obs.NewServingMetrics(reg))
	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.predict(context.Background(), testACFG(int64(i+1))); err != nil {
				t.Errorf("predict %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	samples := scrape(t, ts.URL)
	batches := samples["magic_predict_batches_total"]
	if batches == 0 || batches >= n {
		t.Fatalf("batches = %v, want coalescing (0 < batches < %d)", batches, n)
	}
	if got := samples["magic_predict_batch_size_count"]; got != batches {
		t.Fatalf("batch size observations = %v, want %v", got, batches)
	}
}

// TestBatcherContextCancelled checks a queued request abandons cleanly
// when its context dies while waiting for the batch window.
func TestBatcherContextCancelled(t *testing.T) {
	m := testModel(t, 5)
	b := newBatcher(m, 1, 32, 200*time.Millisecond, nil)

	// Occupy the leader slot with a long window, then cancel a follower.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.predict(context.Background(), testACFG(1)); err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	for {
		b.mu.Lock()
		leading := b.leading
		b.mu.Unlock()
		if leading {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.predict(ctx, testACFG(2)); err != context.Canceled {
		t.Fatalf("cancelled follower error = %v, want context.Canceled", err)
	}
	wg.Wait()
}

// TestHealthzPayload checks /healthz reports the serving model version and
// corpus size.
func TestHealthzPayload(t *testing.T) {
	srv, _, client := newTestServer(t, []string{"clean", "dirty"})
	hs, err := client.HealthInfo()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Status != "ok" || hs.ModelVersion != "" || hs.CorpusSamples != 0 {
		t.Fatalf("empty server health = %+v", hs)
	}
	if err := client.AddSampleASM("clean", "", chainProgram); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadModel(testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	hs, err = client.HealthInfo()
	if err != nil {
		t.Fatal(err)
	}
	if hs.ModelVersion == "" || hs.CorpusSamples != 1 {
		t.Fatalf("health after load = %+v", hs)
	}
}

// TestModelsEndpoint exercises the registry API end to end: install two
// versions, promote the old one back, roll back, and reject bad requests.
func TestModelsEndpoint(t *testing.T) {
	srv, ts, client := newTestServer(t, []string{"clean", "dirty"})
	ctx := context.Background()

	info, err := client.ListModels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Active != "" || len(info.Versions) != 0 {
		t.Fatalf("empty registry = %+v", info)
	}

	if err := srv.LoadModel(testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadModel(testModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	info, err = client.ListModels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 2 {
		t.Fatalf("versions = %+v", info.Versions)
	}
	v1, v2 := info.Versions[0].Version, info.Versions[1].Version
	if info.Active != v2 || info.Previous != v1 {
		t.Fatalf("active %q previous %q, want %q %q", info.Active, info.Previous, v2, v1)
	}

	// Promote the first version back (blue/green).
	info, err = client.PromoteModel(ctx, v1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Active != v1 || info.Previous != v2 {
		t.Fatalf("after promote: active %q previous %q", info.Active, info.Previous)
	}
	// Rollback restores v2.
	info, err = client.RollbackModel(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Active != v2 || info.Previous != v1 {
		t.Fatalf("after rollback: active %q previous %q", info.Active, info.Previous)
	}

	// Error paths: unknown version, missing version, bad action.
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"action":"promote","version":"mv-999999"}`, http.StatusNotFound},
		{`{"action":"promote"}`, http.StatusBadRequest},
		{`{"action":"dance"}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/models", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
}

// TestRollbackWithoutPrevious rejects a rollback when only one version
// ever served.
func TestRollbackWithoutPrevious(t *testing.T) {
	srv, _, client := newTestServer(t, []string{"clean", "dirty"})
	if err := srv.LoadModel(testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.RollbackModel(context.Background()); err == nil {
		t.Fatal("want error rolling back with no previous version")
	}
}

// TestRegistryEviction registers more versions than the bound and checks
// the registry holds the bound while protecting active + rollback target.
func TestRegistryEviction(t *testing.T) {
	srv, _, client := newTestServer(t, []string{"clean", "dirty"})
	for i := 0; i < maxModelVersions+3; i++ {
		if err := srv.LoadModel(testModel(t, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	info, err := client.ListModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != maxModelVersions {
		t.Fatalf("retained %d versions, want %d", len(info.Versions), maxModelVersions)
	}
	found := map[string]bool{}
	for _, v := range info.Versions {
		found[v.Version] = true
	}
	if !found[info.Active] || !found[info.Previous] {
		t.Fatalf("active/previous evicted: %+v", info)
	}
}

// TestHotSwapNeverMixesVersions is the serving-tier race test: concurrent
// /v1/predict traffic runs while promote and rollback flip the active
// version, and every response must (a) succeed and (b) carry probabilities
// that exactly match the model version it claims to have used. A mixed or
// torn batch would produce probabilities from one version labeled with the
// other. Run under -race this also proves the swap path is data-race-free.
func TestHotSwapNeverMixesVersions(t *testing.T) {
	srv, _, client := newTestServer(t, []string{"clean", "dirty"})
	srv.SetBatching(8, 2*time.Millisecond)

	mA, mB := testModel(t, 10), testModel(t, 20)
	a := testACFG(7)
	if err := srv.LoadModel(mA); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadModel(mB); err != nil {
		t.Fatal(err)
	}
	info, err := client.ListModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantByVersion := map[string][]float64{
		info.Versions[0].Version: mA.Predict(a),
		info.Versions[1].Version: mB.Predict(a),
	}
	if d := diffProbs(wantByVersion[info.Versions[0].Version], wantByVersion[info.Versions[1].Version]); !d {
		t.Fatal("test needs models with distinguishable outputs")
	}

	stop := make(chan struct{})
	var swaps sync.WaitGroup
	swaps.Add(1)
	go func() {
		defer swaps.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				_, err = client.PromoteModel(context.Background(), info.Versions[0].Version)
			} else {
				_, err = client.PromoteModel(context.Background(), info.Versions[1].Version)
			}
			if err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
		}
	}()

	var preds sync.WaitGroup
	for g := 0; g < 4; g++ {
		preds.Add(1)
		go func() {
			defer preds.Done()
			for i := 0; i < 25; i++ {
				res, err := client.PredictACFG(a)
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				want, ok := wantByVersion[res.ModelVersion]
				if !ok {
					t.Errorf("response claims unknown version %q", res.ModelVersion)
					return
				}
				for _, p := range res.Predictions {
					label := srv.labelOf[p.Family]
					if p.Probability != want[label] {
						t.Errorf("version %s: probability %v != that version's %v (mixed batch?)",
							res.ModelVersion, p.Probability, want[label])
						return
					}
				}
			}
		}()
	}
	preds.Wait()
	close(stop)
	swaps.Wait()
}

// diffProbs reports whether two probability vectors differ anywhere.
func diffProbs(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}

// TestPredictResponseCarriesVersion checks the wire field used by the
// gateway's cache invalidation.
func TestPredictResponseCarriesVersion(t *testing.T) {
	srv, ts, _ := newTestServer(t, []string{"clean", "dirty"})
	if err := srv.LoadModel(testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(sampleBody{ACFG: testACFG(1)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PredictResult
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.ModelVersion == "" {
		t.Fatal("predict response missing modelVersion")
	}
}

// TestClientBackoffRespectsContext is the regression test for the retry
// loop: a context cancelled while the client is backing off between
// attempts must abort the wait immediately with the context's error, not
// sleep out the remaining backoff.
func TestClientBackoffRespectsContext(t *testing.T) {
	// No listener: every attempt fails instantly with a connection error,
	// so the client spends essentially all its time in backoff.
	c := NewClient("http://127.0.0.1:1")
	c.MaxRetries = 10
	c.RetryBackoff = time.Hour

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := c.HealthContext(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want error from cancelled context")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("error = %v, want context cancellation", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled request took %v: backoff ignored the context", elapsed)
	}
}

// TestSleepBackoffPreCancelled checks an already-dead context returns
// before any timer is armed.
func TestSleepBackoffPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := sleepBackoff(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("pre-cancelled sleep blocked")
	}
}
