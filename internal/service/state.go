package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/acfg"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Store is the server's durable state directory:
//
//	<dir>/corpus.wal   append-only JSONL, one accepted sample per line
//	<dir>/model.json   atomic checkpoint of the serving model
//
// The WAL is appended (and fsynced) on every accepted POST /v1/samples and
// replayed on startup; the model is checkpointed when a training job
// succeeds and again on graceful shutdown, via the atomic
// core.Model.SaveFile, so a crash at any point leaves either the previous
// checkpoint or the new one — never a torn file. A torn trailing WAL line
// (the signature of a crash mid-append) is detected on replay and
// truncated away so subsequent appends start from a clean record boundary.
type Store struct {
	dir string
	wal *os.File
}

const (
	walFilename   = "corpus.wal"
	modelFilename = "model.json"
)

// walEntry is one corpus sample on disk. The family travels by name, not
// label index, so the WAL stays valid as long as the server's family
// universe contains it.
type walEntry struct {
	Family string     `json:"family"`
	Name   string     `json:"name"`
	ACFG   *acfg.ACFG `json:"acfg"`
}

// OpenStore opens (creating if needed) a state directory. Leftover
// temporary files from an interrupted atomic checkpoint are swept away.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: open state dir: %w", err)
	}
	if stale, err := filepath.Glob(filepath.Join(dir, modelFilename+".tmp-*")); err == nil {
		for _, f := range stale {
			_ = os.Remove(f)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the state directory path.
func (st *Store) Dir() string { return st.dir }

func (st *Store) walPath() string   { return filepath.Join(st.dir, walFilename) }
func (st *Store) modelPath() string { return filepath.Join(st.dir, modelFilename) }

// replayCorpus streams every intact WAL entry to apply, in append order.
// A torn final line is truncated in place; corruption anywhere else is an
// error (the WAL is the only copy of the corpus — silently skipping
// records would fake data loss as success). Returns the number of
// replayed samples. Must be called before AppendSample.
func (st *Store) replayCorpus(apply func(walEntry) error) (int, error) {
	f, err := os.OpenFile(st.walPath(), os.O_RDONLY, 0)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("service: open corpus wal: %w", err)
	}
	defer func() { _ = f.Close() }()

	br := bufio.NewReaderSize(f, 1<<20)
	var replayed int
	var goodBytes int64
	for {
		line, readErr := br.ReadBytes('\n')
		if len(line) > 0 {
			var e walEntry
			if jsonErr := json.Unmarshal(line, &e); jsonErr != nil {
				// A record that fails to parse is either a torn tail
				// (crash mid-append — tolerated and truncated) or genuine
				// corruption mid-file (fatal).
				if isLastLine(br, readErr) {
					break
				}
				return replayed, fmt.Errorf("service: corpus wal corrupt at byte %d: %w", goodBytes, jsonErr)
			}
			if applyErr := apply(e); applyErr != nil {
				return replayed, applyErr
			}
			replayed++
			goodBytes += int64(len(line))
		}
		if readErr != nil {
			if errors.Is(readErr, io.EOF) {
				break
			}
			return replayed, fmt.Errorf("service: read corpus wal: %w", readErr)
		}
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > goodBytes {
		if err := os.Truncate(st.walPath(), goodBytes); err != nil {
			return replayed, fmt.Errorf("service: truncate torn wal tail: %w", err)
		}
	}
	return replayed, nil
}

// isLastLine reports whether the reader holds no further data: the line
// that just failed to parse was the file's tail.
func isLastLine(br *bufio.Reader, readErr error) bool {
	if readErr != nil {
		return true // the bad line itself ended at EOF (no trailing \n)
	}
	_, err := br.Peek(1)
	return errors.Is(err, io.EOF)
}

// AppendSample durably appends one accepted sample to the WAL. The write
// is fsynced before returning, so an acknowledged upload survives a crash.
func (st *Store) AppendSample(family, name string, a *acfg.ACFG) error {
	if st.wal == nil {
		f, err := os.OpenFile(st.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("service: open corpus wal: %w", err)
		}
		st.wal = f
	}
	line, err := json.Marshal(walEntry{Family: family, Name: name, ACFG: a})
	if err != nil {
		return fmt.Errorf("service: encode wal entry: %w", err)
	}
	line = append(line, '\n')
	if _, err := st.wal.Write(line); err != nil {
		return fmt.Errorf("service: append corpus wal: %w", err)
	}
	if err := st.wal.Sync(); err != nil {
		return fmt.Errorf("service: sync corpus wal: %w", err)
	}
	return nil
}

// SaveModel atomically checkpoints m to <dir>/model.json.
func (st *Store) SaveModel(m *core.Model) error {
	return m.SaveFile(st.modelPath())
}

// LoadModel loads the model checkpoint, returning (nil, nil) when none
// exists yet.
func (st *Store) LoadModel() (*core.Model, error) {
	m, err := core.LoadFile(st.modelPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return m, err
}

// Close releases the WAL handle. The Store must not be used afterwards.
func (st *Store) Close() error {
	if st.wal == nil {
		return nil
	}
	err := st.wal.Close()
	st.wal = nil
	if err != nil {
		return fmt.Errorf("service: close corpus wal: %w", err)
	}
	return nil
}

// AttachStore wires a state directory into the server: the corpus WAL is
// replayed into the in-memory corpus, the model checkpoint (when present)
// is installed, and from then on accepted samples are appended to the WAL
// and successful training runs are checkpointed. Call it once, before
// serving traffic. It returns the number of replayed samples and whether
// a checkpointed model was installed.
func (s *Server) AttachStore(st *Store) (replayed int, modelLoaded bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		return 0, false, fmt.Errorf("service: store already attached")
	}
	replayed, err = st.replayCorpus(func(e walEntry) error {
		label, ok := s.labelOf[e.Family]
		if !ok {
			return fmt.Errorf("service: wal sample %q has family %q outside the server's universe", e.Name, e.Family)
		}
		if e.ACFG == nil {
			return fmt.Errorf("service: wal sample %q has no acfg", e.Name)
		}
		s.corpus.Add(&dataset.Sample{Name: e.Name, Label: label, ACFG: e.ACFG})
		return nil
	})
	if err != nil {
		return replayed, false, err
	}
	counts := s.corpus.CountByClass()
	for i, f := range s.families {
		s.corpusSize.With(f).Set(float64(counts[i]))
	}
	m, err := st.LoadModel()
	if err != nil {
		return replayed, false, fmt.Errorf("service: load model checkpoint: %w", err)
	}
	if m != nil {
		if m.Config.Classes != len(s.families) {
			return replayed, false, fmt.Errorf("service: checkpointed model has %d classes, server has %d families",
				m.Config.Classes, len(s.families))
		}
		if err := s.installModelLocked(m, "checkpoint"); err != nil {
			return replayed, false, err
		}
		modelLoaded = true
	}
	s.store = st
	return replayed, modelLoaded, nil
}

// ImportCorpus bulk-adds every sample of d to the server corpus (and the
// attached WAL, when present). d's family names must all exist in the
// server's universe; labels are remapped by name.
func (s *Server) ImportCorpus(d *dataset.Dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, smp := range d.Samples {
		family := d.Families[smp.Label]
		label, ok := s.labelOf[family]
		if !ok {
			return fmt.Errorf("service: import sample %q: unknown family %q", smp.Name, family)
		}
		if s.store != nil {
			if err := s.store.AppendSample(family, smp.Name, smp.ACFG); err != nil {
				return err
			}
		}
		s.corpus.Add(&dataset.Sample{Name: smp.Name, Label: label, ACFG: smp.ACFG})
	}
	counts := s.corpus.CountByClass()
	for i, f := range s.families {
		s.corpusSize.With(f).Set(float64(counts[i]))
	}
	return nil
}

// Close gracefully quiesces the server: it cancels any running training
// job and waits for it, writes a final model checkpoint, and releases the
// state directory. Safe to call when no store is attached.
func (s *Server) Close() error {
	s.CancelTraining()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return nil
	}
	var first error
	if s.model != nil {
		if err := s.store.SaveModel(s.model); err != nil {
			first = err
		}
	}
	if err := s.store.Close(); err != nil && first == nil {
		first = err
	}
	s.store = nil
	return first
}
