package service

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"repro/internal/acfg"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataset"
)

// Store is the server's durable state directory:
//
//	<dir>/LOCK            exclusive flock guarding the directory
//	<dir>/corpus-NNNNNN.seg/.idx  immutable binary segments (compacted history)
//	<dir>/corpus.wal      append-only JSONL tail, one accepted sample per line
//	<dir>/model.json      atomic checkpoint of the serving model
//
// Accepted samples land in the WAL (fsynced per request, group-committed on
// bulk import). When the WAL passes a size threshold, the compactor turns
// its durable prefix into a binary segment — staged, fsynced, renamed, and
// made durable with a directory fsync before the WAL is tail-swapped — so
// boot replay streams compact checksummed segments instead of re-parsing
// the full JSONL history. The index rename is the commit point: a crash at
// any instant leaves either the WAL records, the segment, or (briefly)
// both, and replay dedups by content hash so no sample is ever counted
// twice. A torn trailing WAL line (crash mid-append) is truncated away on
// replay; a failed append truncates back to the last durable offset so the
// WAL never carries a torn record mid-file.
type Store struct {
	dir  string
	lock *os.File

	mu         sync.Mutex
	wal        *os.File
	walSize    int64 // bytes of durable, intact records (last-good offset)
	walRecords int
	segRecords int
	segCount   int
	segBytes   int64
	seenSeg    map[[sha256.Size]byte]struct{} // hashes already compacted into segments

	compactBytes int64
	compactions  int
	compactCh    chan struct{}
	stopCh       chan struct{}
	wg           sync.WaitGroup
	onCompact    func(error)
}

const (
	walFilename   = "corpus.wal"
	modelFilename = "model.json"
	lockFilename  = "LOCK"
)

// ErrStateDirLocked reports that another process holds the state
// directory's exclusive lock. magic-server maps it to exit code 2.
var ErrStateDirLocked = errors.New("state directory locked by another process")

// Fault-injection seams for durability regression tests. Production always
// runs the plain operations.
var (
	walWrite = func(f *os.File, b []byte) (int, error) { return f.Write(b) }
	walSync  = func(f *os.File) error { return f.Sync() }
	fsyncDir = corpus.SyncDir
)

// walEntry is one corpus sample on disk. The family travels by name, not
// label index, so the WAL stays valid as long as the server's family
// universe contains it. Hash is the hex ACFG content digest computed at
// ingest; replay and compaction reuse it instead of re-hashing (absent in
// WALs written before dedup existed, in which case it is recomputed once).
type walEntry struct {
	Family string     `json:"family"`
	Name   string     `json:"name"`
	Hash   string     `json:"hash,omitempty"`
	ACFG   *acfg.ACFG `json:"acfg"`
}

// record converts the wire entry to a corpus record, recomputing the
// content hash only for legacy entries that lack one.
func (e walEntry) record() (*corpus.Record, error) {
	if e.ACFG == nil {
		return nil, fmt.Errorf("service: wal sample %q has no acfg", e.Name)
	}
	r := &corpus.Record{Family: e.Family, Name: e.Name, ACFG: e.ACFG}
	if e.Hash == "" {
		r.Hash = e.ACFG.ContentHash()
		return r, nil
	}
	b, err := hex.DecodeString(e.Hash)
	if err != nil || len(b) != sha256.Size {
		return nil, fmt.Errorf("service: wal sample %q has malformed content hash %q", e.Name, e.Hash)
	}
	copy(r.Hash[:], b)
	return r, nil
}

// OpenStore opens (creating if needed) a state directory and takes its
// exclusive lock; a second process pointed at the same directory gets
// ErrStateDirLocked instead of silently interleaving WAL appends. Leftover
// temporaries from interrupted atomic writes (model checkpoint, segment
// staging, WAL tail swap) and uncommitted segments are swept away.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: open state dir: %w", err)
	}
	lock, err := lockStateDir(dir)
	if err != nil {
		return nil, err
	}
	for _, pat := range []string{modelFilename + ".tmp-*", walFilename + ".tmp-*"} {
		if stale, err := filepath.Glob(filepath.Join(dir, pat)); err == nil {
			for _, f := range stale {
				_ = os.Remove(f)
			}
		}
	}
	if err := corpus.SweepStray(dir); err != nil {
		_ = lock.Close()
		return nil, err
	}
	return &Store{dir: dir, lock: lock, seenSeg: make(map[[sha256.Size]byte]struct{})}, nil
}

// lockStateDir takes a non-blocking exclusive flock on <dir>/LOCK. The
// kernel drops the lock when the holder dies (kill -9 included), so there
// are no stale locks to clean up.
func lockStateDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFilename), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open state lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, fmt.Errorf("%w: %s", ErrStateDirLocked, dir)
		}
		return nil, fmt.Errorf("service: lock state dir: %w", err)
	}
	return f, nil
}

// Dir returns the state directory path.
func (st *Store) Dir() string { return st.dir }

func (st *Store) walPath() string   { return filepath.Join(st.dir, walFilename) }
func (st *Store) modelPath() string { return filepath.Join(st.dir, modelFilename) }

// StoreStats is a point-in-time snapshot of the storage tier, surfaced on
// /healthz and as metrics.
type StoreStats struct {
	Segments       int
	SegmentRecords int
	SegmentBytes   int64
	WALRecords     int
	WALBytes       int64
	Compactions    int
}

// Stats returns a snapshot of segment/WAL sizes and compaction count.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StoreStats{
		Segments:       st.segCount,
		SegmentRecords: st.segRecords,
		SegmentBytes:   st.segBytes,
		WALRecords:     st.walRecords,
		WALBytes:       st.walSize,
		Compactions:    st.compactions,
	}
}

// Replay streams the whole durable corpus to apply — committed segments in
// sequence order first, then the WAL tail in append order. fromSegment
// tells the caller which tier a record came from; the caller is expected
// to dedup by content hash, since a crash between segment commit and WAL
// truncation legitimately leaves the same records in both tiers. A torn
// final WAL line is truncated in place; corruption anywhere else — in a
// segment or mid-WAL — is an error (this is the only copy of the corpus;
// skipping records would fake data loss as success). Must be called before
// the first append.
func (st *Store) Replay(apply func(r *corpus.Record, fromSegment bool) error) (segN, walN int, err error) {
	set, err := corpus.OpenSet(st.dir)
	if err != nil {
		return 0, 0, err
	}
	err = set.Iterate(func(i int, r *corpus.Record) error {
		st.seenSeg[r.Hash] = struct{}{}
		return apply(r, true)
	})
	segN = set.Len()
	st.mu.Lock()
	st.segRecords, st.segCount, st.segBytes = set.Len(), set.Segments(), set.Bytes()
	st.mu.Unlock()
	if cerr := set.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return segN, 0, err
	}
	walN, err = st.replayWAL(func(e walEntry) error {
		r, rerr := e.record()
		if rerr != nil {
			return rerr
		}
		return apply(r, false)
	})
	return segN, walN, err
}

// replayWAL streams every intact WAL entry to apply, in append order,
// truncating a torn final line and recording the durable length and record
// count for subsequent appends and compaction.
func (st *Store) replayWAL(apply func(walEntry) error) (int, error) {
	f, err := os.OpenFile(st.walPath(), os.O_RDONLY, 0)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("service: open corpus wal: %w", err)
	}
	defer func() { _ = f.Close() }()

	br := bufio.NewReaderSize(f, 1<<20)
	var replayed int
	var goodBytes int64
	for {
		line, readErr := br.ReadBytes('\n')
		if len(line) > 0 {
			var e walEntry
			if jsonErr := json.Unmarshal(line, &e); jsonErr != nil {
				// A record that fails to parse is either a torn tail
				// (crash mid-append — tolerated and truncated) or genuine
				// corruption mid-file (fatal).
				if isLastLine(br, readErr) {
					break
				}
				return replayed, fmt.Errorf("service: corpus wal corrupt at byte %d: %w", goodBytes, jsonErr)
			}
			if applyErr := apply(e); applyErr != nil {
				return replayed, applyErr
			}
			replayed++
			goodBytes += int64(len(line))
		}
		if readErr != nil {
			if errors.Is(readErr, io.EOF) {
				break
			}
			return replayed, fmt.Errorf("service: read corpus wal: %w", readErr)
		}
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > goodBytes {
		if err := os.Truncate(st.walPath(), goodBytes); err != nil {
			return replayed, fmt.Errorf("service: truncate torn wal tail: %w", err)
		}
	}
	st.mu.Lock()
	st.walSize, st.walRecords = goodBytes, replayed
	st.mu.Unlock()
	return replayed, nil
}

// isLastLine reports whether the reader holds no further data: the line
// that just failed to parse was the file's tail.
func isLastLine(br *bufio.Reader, readErr error) bool {
	if readErr != nil {
		return true // the bad line itself ended at EOF (no trailing \n)
	}
	_, err := br.Peek(1)
	return errors.Is(err, io.EOF)
}

// ensureWALLocked lazily opens the WAL for appending. When this creates
// the file, the directory is fsynced too — without that, the first
// acknowledged sample's file-level Sync is not enough: the filename itself
// can vanish on power loss.
func (st *Store) ensureWALLocked() error {
	if st.wal != nil {
		return nil
	}
	_, statErr := os.Stat(st.walPath())
	created := errors.Is(statErr, os.ErrNotExist)
	f, err := os.OpenFile(st.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("service: open corpus wal: %w", err)
	}
	if created {
		if err := fsyncDir(st.dir); err != nil {
			_ = f.Close()
			return err
		}
	}
	st.wal = f
	return nil
}

// encodeEntries marshals samples into contiguous WAL lines.
func encodeEntries(entries []walEntry) ([]byte, error) {
	var buf []byte
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			return nil, fmt.Errorf("service: encode wal entry: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	return buf, nil
}

// appendLocked writes pre-encoded lines holding n records and fsyncs once.
// On a short write or failed sync the WAL is truncated back to the last
// durable offset, so the file never carries a torn record mid-file for a
// survivable error — replay's fatal mid-file corruption path stays
// reserved for real corruption.
func (st *Store) appendLocked(lines []byte, n int) error {
	if err := st.ensureWALLocked(); err != nil {
		return err
	}
	if _, err := walWrite(st.wal, lines); err != nil {
		st.truncateToLastGoodLocked()
		return fmt.Errorf("service: append corpus wal: %w", err)
	}
	if err := walSync(st.wal); err != nil {
		st.truncateToLastGoodLocked()
		return fmt.Errorf("service: sync corpus wal: %w", err)
	}
	st.walSize += int64(len(lines))
	st.walRecords += n
	st.maybeSignalCompactLocked()
	return nil
}

// truncateToLastGoodLocked discards a possibly-torn tail after a failed
// append, restoring the record-boundary invariant. Best effort: if the
// truncate itself fails the next boot's torn-tail handling still recovers.
func (st *Store) truncateToLastGoodLocked() {
	_ = os.Truncate(st.walPath(), st.walSize)
}

// AppendSample durably appends one accepted sample to the WAL. The write
// is fsynced before returning, so an acknowledged upload survives a crash.
func (st *Store) AppendSample(family, name string, hash [sha256.Size]byte, a *acfg.ACFG) error {
	lines, err := encodeEntries([]walEntry{{Family: family, Name: name, Hash: hex.EncodeToString(hash[:]), ACFG: a}})
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.appendLocked(lines, 1)
}

// AppendBatch durably appends a batch of samples with a single group
// commit: one write, one fsync. Bulk import of n samples costs one fsync
// instead of n while every sample in the batch is still durable before the
// call returns.
func (st *Store) AppendBatch(entries []walEntry) error {
	if len(entries) == 0 {
		return nil
	}
	lines, err := encodeEntries(entries)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.appendLocked(lines, len(entries))
}

// EnableCompaction starts the background compactor: once the WAL's durable
// prefix exceeds thresholdBytes, it is folded into a binary segment and
// the WAL is tail-swapped. onDone (optional) observes every compaction
// attempt — err is nil on success — so callers can publish telemetry;
// compaction errors never affect the append path. Call at most once, after
// Replay and before serving traffic.
func (st *Store) EnableCompaction(thresholdBytes int64, onDone func(error)) {
	if thresholdBytes <= 0 {
		return
	}
	st.mu.Lock()
	st.compactBytes = thresholdBytes
	st.compactCh = make(chan struct{}, 1)
	st.stopCh = make(chan struct{})
	st.onCompact = onDone
	pending := st.walSize >= thresholdBytes
	st.mu.Unlock()

	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		for {
			select {
			case <-st.stopCh:
				return
			case <-st.compactCh:
				err := st.Compact()
				if st.onCompact != nil {
					st.onCompact(err)
				}
			}
		}
	}()
	if pending {
		st.signalCompact()
	}
}

// maybeSignalCompactLocked nudges the compactor when the WAL has grown
// past the threshold. Non-blocking: a signal already in flight is enough.
func (st *Store) maybeSignalCompactLocked() {
	if st.compactCh != nil && st.compactBytes > 0 && st.walSize >= st.compactBytes {
		select {
		case st.compactCh <- struct{}{}:
		default:
		}
	}
}

func (st *Store) signalCompact() {
	select {
	case st.compactCh <- struct{}{}:
	default:
	}
}

// Compact folds the WAL's current durable prefix into a new committed
// segment, then tail-swaps the WAL. Exported so tests and shutdown paths
// can force a deterministic compaction; the background compactor calls it
// too. Appends proceed concurrently — only the final tail swap holds the
// store lock.
//
// Crash safety: the segment commit (stage, fsync, rename, fsync dir)
// happens strictly before the WAL swap. A crash after commit but before
// the swap leaves the same records in both tiers; boot replay dedups by
// content hash and the next compaction skips already-segmented hashes, so
// nothing is double-counted and the duplicate prefix is dropped from the
// WAL the next time compaction runs.
func (st *Store) Compact() error {
	st.mu.Lock()
	upTo := st.walSize
	nRecords := st.walRecords
	st.mu.Unlock()
	if nRecords == 0 {
		return nil
	}

	recs, err := st.readWALPrefix(upTo)
	if err != nil {
		return err
	}
	// Skip records whose content already lives in a segment (ingest-level
	// duplicates in legacy WALs, or a WAL prefix re-read after a crash
	// between segment commit and tail swap).
	fresh := recs[:0]
	for _, r := range recs {
		if _, dup := st.seenSeg[r.Hash]; !dup {
			fresh = append(fresh, r)
		}
	}
	if len(fresh) > 0 {
		seq, err := corpus.NextSeq(st.dir)
		if err != nil {
			return err
		}
		w, err := corpus.NewWriter(st.dir, seq)
		if err != nil {
			return err
		}
		for _, r := range fresh {
			if err := w.Append(r); err != nil {
				w.Abort()
				return err
			}
		}
		segPath, err := w.Commit()
		if err != nil {
			return err
		}
		seg, err := corpus.OpenSegment(segPath)
		if err != nil {
			return fmt.Errorf("service: reopen committed segment: %w", err)
		}
		segSize := seg.Size()
		_ = seg.Close()
		st.mu.Lock()
		for _, r := range fresh {
			st.seenSeg[r.Hash] = struct{}{}
		}
		st.segRecords += len(fresh)
		st.segCount++
		st.segBytes += segSize
		st.mu.Unlock()
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.swapWALTailLocked(upTo); err != nil {
		return err
	}
	st.walRecords -= nRecords
	st.compactions++
	return nil
}

// readWALPrefix decodes the first upTo bytes of the WAL into records.
// Every line inside the durable prefix is intact by invariant, so any
// parse failure here is real corruption.
func (st *Store) readWALPrefix(upTo int64) ([]*corpus.Record, error) {
	f, err := os.Open(st.walPath())
	if err != nil {
		return nil, fmt.Errorf("service: open corpus wal for compaction: %w", err)
	}
	defer func() { _ = f.Close() }()
	br := bufio.NewReaderSize(io.LimitReader(f, upTo), 1<<20)
	var recs []*corpus.Record
	for {
		line, readErr := br.ReadBytes('\n')
		if len(line) > 0 {
			var e walEntry
			if err := json.Unmarshal(line, &e); err != nil {
				return nil, fmt.Errorf("service: corpus wal corrupt during compaction: %w", err)
			}
			r, err := e.record()
			if err != nil {
				return nil, err
			}
			recs = append(recs, r)
		}
		if readErr != nil {
			if errors.Is(readErr, io.EOF) {
				break
			}
			return nil, fmt.Errorf("service: read corpus wal: %w", readErr)
		}
	}
	return recs, nil
}

// swapWALTailLocked atomically replaces the WAL with its own tail
// [upTo, end): the tail is staged to a temp file, fsynced, renamed over
// corpus.wal, and the directory is fsynced — the same durability protocol
// as segment commit. The live append handle is reopened on the new file.
func (st *Store) swapWALTailLocked(upTo int64) error {
	src, err := os.Open(st.walPath())
	if err != nil {
		return fmt.Errorf("service: open corpus wal for tail swap: %w", err)
	}
	if _, err := src.Seek(upTo, io.SeekStart); err != nil {
		_ = src.Close()
		return fmt.Errorf("service: seek corpus wal tail: %w", err)
	}
	tmp, err := os.CreateTemp(st.dir, walFilename+".tmp-*")
	if err != nil {
		_ = src.Close()
		return fmt.Errorf("service: stage corpus wal tail: %w", err)
	}
	tailLen, err := io.Copy(tmp, src)
	_ = src.Close()
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("service: stage corpus wal tail: %w", err)
	}
	if st.wal != nil {
		_ = st.wal.Close()
		st.wal = nil
	}
	if err := os.Rename(tmp.Name(), st.walPath()); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("service: swap corpus wal tail: %w", err)
	}
	if err := fsyncDir(st.dir); err != nil {
		return err
	}
	st.walSize = tailLen
	return nil
}

// SaveModel atomically checkpoints m to <dir>/model.json.
func (st *Store) SaveModel(m *core.Model) error {
	return m.SaveFile(st.modelPath())
}

// LoadModel loads the model checkpoint, returning (nil, nil) when none
// exists yet.
func (st *Store) LoadModel() (*core.Model, error) {
	m, err := core.LoadFile(st.modelPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return m, err
}

// Close stops the compactor, releases the WAL handle, and drops the state
// directory lock. The Store must not be used afterwards.
func (st *Store) Close() error {
	if st.stopCh != nil {
		close(st.stopCh)
		st.wg.Wait()
		st.stopCh = nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var first error
	if st.wal != nil {
		if err := st.wal.Close(); err != nil {
			first = fmt.Errorf("service: close corpus wal: %w", err)
		}
		st.wal = nil
	}
	if st.lock != nil {
		// Closing the descriptor releases the flock.
		if err := st.lock.Close(); err != nil && first == nil {
			first = fmt.Errorf("service: release state lock: %w", err)
		}
		st.lock = nil
	}
	return first
}

// AttachStore wires a state directory into the server: segments and the
// corpus WAL are replayed into the in-memory corpus (deduplicated by
// content hash), the model checkpoint (when present) is installed, and
// from then on accepted samples are appended to the WAL and successful
// training runs are checkpointed. Call it once, before serving traffic.
// It returns the number of replayed samples and whether a checkpointed
// model was installed.
func (s *Server) AttachStore(st *Store) (replayed int, modelLoaded bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		return 0, false, fmt.Errorf("service: store already attached")
	}
	_, _, err = st.Replay(func(r *corpus.Record, fromSegment bool) error {
		label, ok := s.labelOf[r.Family]
		if !ok {
			return fmt.Errorf("service: stored sample %q has family %q outside the server's universe", r.Name, r.Family)
		}
		if _, dup := s.seen[r.Hash]; dup {
			// Legitimate after a crash between segment commit and WAL
			// truncation: the same record exists in both tiers.
			return nil
		}
		s.seen[r.Hash] = struct{}{}
		s.corpus.Add(&dataset.Sample{Name: r.Name, Label: label, ACFG: r.ACFG})
		replayed++
		return nil
	})
	if err != nil {
		return replayed, false, err
	}
	counts := s.corpus.CountByClass()
	for i, f := range s.families {
		s.corpusSize.With(f).Set(float64(counts[i]))
	}
	m, err := st.LoadModel()
	if err != nil {
		return replayed, false, fmt.Errorf("service: load model checkpoint: %w", err)
	}
	if m != nil {
		if m.Config.Classes != len(s.families) {
			return replayed, false, fmt.Errorf("service: checkpointed model has %d classes, server has %d families",
				m.Config.Classes, len(s.families))
		}
		if err := s.installModelLocked(m, "checkpoint"); err != nil {
			return replayed, false, err
		}
		modelLoaded = true
	}
	s.store = st
	s.publishCorpusGaugesLocked()
	return replayed, modelLoaded, nil
}

// publishCorpusGaugesLocked mirrors the attached store's tier shape onto
// the corpus metrics; callers hold s.mu (which guards the store pointer).
func (s *Server) publishCorpusGaugesLocked() {
	if s.store == nil {
		return
	}
	stats := s.store.Stats()
	s.corpusMetrics.SetState(stats.Segments, stats.SegmentRecords, stats.SegmentBytes, stats.WALRecords, stats.WALBytes)
}

// EnableCompaction starts the attached store's background WAL-to-segment
// compactor with the given size threshold. Every attempt's outcome lands
// in the corpus metrics; failures are additionally reported to logf
// (optional) and never affect the ingest path. No-op when no store is
// attached or the threshold is not positive.
func (s *Server) EnableCompaction(thresholdBytes int64, logf func(format string, args ...any)) {
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st == nil {
		return
	}
	st.EnableCompaction(thresholdBytes, func(err error) {
		s.corpusMetrics.CompactionFinished(err != nil)
		stats := st.Stats()
		s.corpusMetrics.SetState(stats.Segments, stats.SegmentRecords, stats.SegmentBytes, stats.WALRecords, stats.WALBytes)
		if err != nil && logf != nil {
			logf("corpus compaction: %v", err)
		}
	})
}

// ImportCorpus bulk-adds every sample of d to the server corpus (and the
// attached WAL, when present) with one group commit: a single fsync covers
// the whole batch instead of one per sample. Samples whose ACFG content
// hash is already in the corpus are skipped. d's family names must all
// exist in the server's universe; labels are remapped by name.
func (s *Server) ImportCorpus(d *dataset.Dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var entries []walEntry
	var add []*dataset.Sample
	for _, smp := range d.Samples {
		family := d.Families[smp.Label]
		label, ok := s.labelOf[family]
		if !ok {
			return fmt.Errorf("service: import sample %q: unknown family %q", smp.Name, family)
		}
		hash := smp.ACFG.ContentHash()
		if _, dup := s.seen[hash]; dup {
			s.corpusMetrics.Deduplicated()
			continue
		}
		s.seen[hash] = struct{}{}
		entries = append(entries, walEntry{Family: family, Name: smp.Name, Hash: hex.EncodeToString(hash[:]), ACFG: smp.ACFG})
		add = append(add, &dataset.Sample{Name: smp.Name, Label: label, ACFG: smp.ACFG})
	}
	if s.store != nil {
		if err := s.store.AppendBatch(entries); err != nil {
			return err
		}
	}
	for _, smp := range add {
		s.corpus.Add(smp)
	}
	counts := s.corpus.CountByClass()
	for i, f := range s.families {
		s.corpusSize.With(f).Set(float64(counts[i]))
	}
	s.publishCorpusGaugesLocked()
	return nil
}

// Close gracefully quiesces the server: it cancels any running training
// job and waits for it, writes a final model checkpoint, and releases the
// state directory. Safe to call when no store is attached.
func (s *Server) Close() error {
	s.CancelTraining()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return nil
	}
	var first error
	if s.model != nil {
		if err := s.store.SaveModel(s.model); err != nil {
			first = err
		}
	}
	if err := s.store.Close(); err != nil && first == nil {
		first = err
	}
	s.store = nil
	return first
}
