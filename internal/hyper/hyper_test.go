package hyper

import (
	"math/rand"
	"testing"

	"repro/internal/acfg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func TestPaperGridSize(t *testing.T) {
	base := core.DefaultConfig(9, acfg.NumAttributes)
	configs := PaperGrid().Enumerate(base)
	// Table II: 208 settings — 64 adaptive (2 ratios × 3 conv sizes × 2
	// conv2d channels × 2 dropout × 2 batch × 2 weight decay / ... the
	// paper's count) plus 96 sort+conv1d plus 48 sort+weightedvertices.
	adaptive, conv1d, wv := 0, 0, 0
	for _, c := range configs {
		switch {
		case c.Pooling == core.AdaptivePooling:
			adaptive++
		case c.Head == core.Conv1DHead:
			conv1d++
		default:
			wv++
		}
	}
	if adaptive != 96 || conv1d != 96 || wv != 48 {
		t.Logf("adaptive=%d conv1d=%d weightedvertices=%d total=%d",
			adaptive, conv1d, wv, len(configs))
	}
	// The paper reports 64/96/48 = 208; our grid structure yields the same
	// conv1d and weighted-vertices counts. The adaptive branch sweeps the
	// three conv sizes too, giving 96; the paper's 64 implies they pinned
	// one dimension. We assert our documented counts.
	if conv1d != 96 {
		t.Errorf("conv1d settings = %d, want 96", conv1d)
	}
	if wv != 48 {
		t.Errorf("weighted-vertices settings = %d, want 48", wv)
	}
	if adaptive == 0 {
		t.Error("no adaptive settings")
	}
	// Every enumerated config must validate.
	for i, c := range configs {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %d invalid: %v", i, err)
		}
	}
}

func TestEnumerateEmptyGridPinsDefaults(t *testing.T) {
	base := core.DefaultConfig(3, acfg.NumAttributes)
	configs := Grid{}.Enumerate(base)
	if len(configs) != 1 {
		t.Fatalf("empty grid enumerates %d configs, want 1", len(configs))
	}
	if configs[0].Pooling != base.Pooling || configs[0].PoolingRatio != base.PoolingRatio {
		t.Fatal("empty grid must pin base config")
	}
}

func TestEnumerateConditionals(t *testing.T) {
	base := core.DefaultConfig(3, acfg.NumAttributes)
	g := Grid{
		PoolingTypes: []core.PoolingType{core.SortPooling},
		Heads:        []core.HeadType{core.WeightedVerticesHead},
		// Conv1D settings must NOT multiply the weighted-vertices branch.
		Conv1DKernels: []int{5, 7},
	}
	configs := g.Enumerate(base)
	if len(configs) != 1 {
		t.Fatalf("conditional expansion produced %d configs, want 1", len(configs))
	}
}

func TestEnumerateConvBackends(t *testing.T) {
	base := core.DefaultConfig(3, acfg.NumAttributes)
	names := core.ConvBackendNames()
	configs := Grid{ConvBackends: names}.Enumerate(base)
	if len(configs) != len(names) {
		t.Fatalf("backend grid enumerates %d configs, want %d", len(configs), len(names))
	}
	seen := make(map[string]bool)
	for i, c := range configs {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %d invalid: %v", i, err)
		}
		seen[c.ConvName()] = true
	}
	for _, name := range names {
		if !seen[name] {
			t.Errorf("backend %q missing from the enumeration", name)
		}
	}
	// An empty backend dimension must pin the base config's backend, not
	// multiply the grid.
	if got := len(Grid{}.Enumerate(base)); got != 1 {
		t.Fatalf("empty grid enumerates %d configs, want 1", got)
	}
}

func tinyCorpus(perClass int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(3))
	d := dataset.New([]string{"a", "b"})
	for c := 0; c < 2; c++ {
		for i := 0; i < perClass; i++ {
			n := 5 + rng.Intn(5)
			g := graph.NewDirected(n)
			for v := 0; v+1 < n; v++ {
				g.AddEdge(v, v+1)
			}
			attrs := tensor.New(n, acfg.NumAttributes)
			for v := 0; v < n; v++ {
				attrs.Set(v, acfg.AttrTotalInstructions, 5)
				if c == 1 {
					attrs.Set(v, acfg.AttrArithmetic, 4)
				} else {
					attrs.Set(v, acfg.AttrMov, 4)
				}
			}
			a, err := acfg.New(g, attrs)
			if err != nil {
				panic(err)
			}
			d.Add(&dataset.Sample{Label: c, ACFG: a})
		}
	}
	return d
}

func TestSearchSelectsBestByValLoss(t *testing.T) {
	d := tinyCorpus(10)
	base := core.DefaultConfig(2, acfg.NumAttributes)
	base.Epochs = 4
	base.ConvSizes = []int{8}
	base.HiddenUnits = 8
	base.Conv2DChannels = 4

	// Two configs: a sane one and a degenerate one (huge dropout) — search
	// must rank the sane one first.
	sane := base
	crippled := base
	crippled.DropoutRate = 0.95
	_ = crippled.Validate() // 0.95 is valid but harmful

	results, err := Search(d, []core.Config{crippled, sane}, SearchOptions{Folds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].ValLoss > results[1].ValLoss {
		t.Fatal("results not sorted by validation loss")
	}
	if results[0].Config.DropoutRate == 0.95 && results[0].ValLoss > 0.5 {
		t.Fatalf("crippled config won with loss %v over %v", results[0].ValLoss, results[1].ValLoss)
	}
}

func TestSearchEmptyGrid(t *testing.T) {
	if _, err := Search(tinyCorpus(3), nil, SearchOptions{}); err == nil {
		t.Fatal("want error for empty config list")
	}
}

func TestSearchParallelMatchesSequential(t *testing.T) {
	d := tinyCorpus(8)
	base := core.DefaultConfig(2, acfg.NumAttributes)
	base.Epochs = 3
	base.ConvSizes = []int{8}
	base.HiddenUnits = 8
	base.Conv2DChannels = 4
	base.DropoutRate = 0

	cfgA := base
	cfgB := base
	cfgB.PoolingRatio = 0.2
	configs := []core.Config{cfgA, cfgB}

	seq, err := Search(d, configs, SearchOptions{Folds: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Search(d, configs, SearchOptions{Folds: 2, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].ValLoss != par[i].ValLoss {
			t.Fatalf("result %d differs: %v vs %v", i, seq[i].ValLoss, par[i].ValLoss)
		}
	}
}
