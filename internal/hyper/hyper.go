// Package hyper implements the exhaustive hyperparameter search of Section
// V-B / Table II: it enumerates the cartesian grid of pooling types,
// pooling ratios, graph-convolution sizes, remaining layers and training
// hyperparameters, evaluates each setting with stratified k-fold
// cross-validation, and selects the model with the minimum mean validation
// loss across folds.
package hyper

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

// Grid declares the value ranges to sweep (Table II "Choice or Value
// Range"). Leaving a slice empty pins the corresponding Config default.
type Grid struct {
	PoolingTypes   []core.PoolingType
	PoolingRatios  []float64
	ConvSizes      [][]int
	ConvBackends   []string        // graph-convolution backends (core.ConvBackendNames)
	Heads          []core.HeadType // sort-pooling remaining layers
	Conv2DChannels []int           // adaptive-pooling head
	Conv1DChannels [][2]int        // conv1d head
	Conv1DKernels  []int           // conv1d head
	DropoutRates   []float64
	BatchSizes     []int
	WeightDecays   []float64
}

// PaperGrid returns the full Table II grid (208 settings once conditional
// applicability is accounted for).
func PaperGrid() Grid {
	return Grid{
		PoolingTypes:   []core.PoolingType{core.AdaptivePooling, core.SortPooling},
		PoolingRatios:  []float64{0.2, 0.64},
		ConvSizes:      [][]int{{32, 32, 32, 1}, {32, 32, 32, 32}, {128, 64, 32, 32}},
		Heads:          []core.HeadType{core.Conv1DHead, core.WeightedVerticesHead},
		Conv2DChannels: []int{16, 32},
		Conv1DChannels: [][2]int{{16, 32}},
		Conv1DKernels:  []int{5, 7},
		DropoutRates:   []float64{0.1, 0.5},
		BatchSizes:     []int{10, 40},
		WeightDecays:   []float64{0.0001, 0.0005},
	}
}

// SmallGrid returns a reduced grid sized for single-CPU sweeps; it still
// covers every pooling type and both of the paper's extensions.
func SmallGrid() Grid {
	return Grid{
		PoolingTypes:   []core.PoolingType{core.AdaptivePooling, core.SortPooling},
		PoolingRatios:  []float64{0.2, 0.64},
		ConvSizes:      [][]int{{32, 32, 32, 32}},
		Heads:          []core.HeadType{core.Conv1DHead, core.WeightedVerticesHead},
		Conv2DChannels: []int{16},
		Conv1DChannels: [][2]int{{16, 32}},
		Conv1DKernels:  []int{5},
		DropoutRates:   []float64{0.1},
		BatchSizes:     []int{10},
		WeightDecays:   []float64{0.0001},
	}
}

// Enumerate expands the grid into concrete configurations starting from a
// base config (which supplies classes, attribute width, epochs, learning
// rate and seed). Conditional hyperparameters follow Table II's footnotes:
// the head, Conv1D and Conv2D settings only vary where applicable.
func (g Grid) Enumerate(base core.Config) []core.Config {
	var out []core.Config
	for _, conv := range orDefaultStr(g.ConvBackends, base.Conv) {
		for _, pt := range orDefaultPooling(g.PoolingTypes, base.Pooling) {
			for _, ratio := range orDefaultF(g.PoolingRatios, base.PoolingRatio) {
				for _, sizes := range orDefaultSizes(g.ConvSizes, base.ConvSizes) {
					for _, drop := range orDefaultF(g.DropoutRates, base.DropoutRate) {
						for _, batch := range orDefaultI(g.BatchSizes, base.BatchSize) {
							for _, wd := range orDefaultF(g.WeightDecays, base.WeightDecay) {
								common := base
								common.Conv = conv
								common.Pooling = pt
								common.PoolingRatio = ratio
								common.ConvSizes = sizes
								common.DropoutRate = drop
								common.BatchSize = batch
								common.WeightDecay = wd
								out = append(out, g.expandHead(common)...)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// expandHead expands the conditionally applicable head hyperparameters.
func (g Grid) expandHead(c core.Config) []core.Config {
	if c.Pooling == core.AdaptivePooling {
		var out []core.Config
		for _, ch := range orDefaultI(g.Conv2DChannels, c.Conv2DChannels) {
			cc := c
			cc.Conv2DChannels = ch
			cc.Head = core.Conv1DHead // ignored in adaptive mode
			out = append(out, cc)
		}
		return out
	}
	var out []core.Config
	for _, head := range orDefaultHead(g.Heads, c.Head) {
		switch head {
		case core.Conv1DHead:
			for _, pair := range orDefaultPairs(g.Conv1DChannels, c.Conv1DChannels) {
				for _, kernel := range orDefaultI(g.Conv1DKernels, c.Conv1DKernel) {
					cc := c
					cc.Head = head
					cc.Conv1DChannels = pair
					cc.Conv1DKernel = kernel
					out = append(out, cc)
				}
			}
		case core.WeightedVerticesHead:
			cc := c
			cc.Head = head
			out = append(out, cc)
		}
	}
	return out
}

// Result records one setting's cross-validation outcome.
type Result struct {
	Config  core.Config
	CV      *eval.CVResult
	ValLoss float64 // minimum mean validation loss — the selection score
}

// SearchOptions tunes the sweep.
type SearchOptions struct {
	Folds       int
	Seed        int64
	ValFraction float64 // per-fold internal validation carve-out
	// Workers bounds concurrent configuration evaluations — the CPU
	// analogue of the paper's parallel training across four GPUs. 0 or 1
	// evaluates sequentially.
	Workers int
	Logf    func(format string, args ...any)
}

// Search cross-validates every configuration and returns all results
// sorted by ascending validation loss (best first), mirroring the paper's
// model selection by minimum average validation loss. Settings are
// evaluated concurrently when Workers > 1; results are identical either
// way because every setting derives its seeds from SearchOptions.Seed.
func Search(d *dataset.Dataset, configs []core.Config, opts SearchOptions) ([]Result, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("hyper: empty grid")
	}
	folds := opts.Folds
	if folds == 0 {
		folds = 5
	}
	evalOne := func(ci int, cfg core.Config) (Result, error) {
		factory := func(fold int) (eval.Classifier, error) {
			c := cfg
			c.Seed = opts.Seed + int64(fold)
			return &core.Classifier{Cfg: c, ValFraction: opts.ValFraction}, nil
		}
		cv, err := eval.CrossValidate(d, folds, opts.Seed, factory)
		if err != nil {
			return Result{}, fmt.Errorf("hyper: config %d: %w", ci, err)
		}
		r := Result{Config: cfg, CV: cv, ValLoss: cv.Mean.MeanNLL}
		if opts.Logf != nil {
			opts.Logf("config %d/%d: %v ratio=%.2f backend=%s conv=%v loss=%.4f acc=%.4f",
				ci+1, len(configs), cfg.Pooling, cfg.PoolingRatio, cfg.ConvName(), cfg.ConvSizes,
				r.ValLoss, cv.Mean.Accuracy)
		}
		return r, nil
	}

	results := make([]Result, len(configs))
	errs := make([]error, len(configs))
	if opts.Workers > 1 {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range jobs {
					results[ci], errs[ci] = evalOne(ci, configs[ci])
				}
			}()
		}
		for ci := range configs {
			jobs <- ci
		}
		close(jobs)
		wg.Wait()
	} else {
		for ci, cfg := range configs {
			results[ci], errs[ci] = evalOne(ci, cfg)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].ValLoss < results[j].ValLoss })
	return results, nil
}

func orDefaultF(vals []float64, def float64) []float64 {
	if len(vals) == 0 {
		return []float64{def}
	}
	return vals
}

func orDefaultStr(vals []string, def string) []string {
	if len(vals) == 0 {
		return []string{def}
	}
	return vals
}

func orDefaultI(vals []int, def int) []int {
	if len(vals) == 0 {
		return []int{def}
	}
	return vals
}

func orDefaultSizes(vals [][]int, def []int) [][]int {
	if len(vals) == 0 {
		return [][]int{def}
	}
	return vals
}

func orDefaultPairs(vals [][2]int, def [2]int) [][2]int {
	if len(vals) == 0 {
		return [][2]int{def}
	}
	return vals
}

func orDefaultPooling(vals []core.PoolingType, def core.PoolingType) []core.PoolingType {
	if len(vals) == 0 {
		return []core.PoolingType{def}
	}
	return vals
}

func orDefaultHead(vals []core.HeadType, def core.HeadType) []core.HeadType {
	if len(vals) == 0 {
		return []core.HeadType{def}
	}
	return vals
}
