// Package cfg builds control flow graphs from disassembled programs using
// the two-pass procedure of Section IV-A: the first pass tags instructions
// via the asm.Tagger visitor (Algorithm 1), and the second pass —
// connectBlocks, Algorithm 2 — creates basic blocks and wires fall-through
// and branch edges on the fly.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Block is a basic block: a straight-line instruction sequence with control
// flow transitions only at its exit.
type Block struct {
	ID    int
	Start uint64
	Insts []*asm.Instruction
}

// NumInsts returns the number of instructions in the block.
func (b *Block) NumInsts() int { return len(b.Insts) }

// CFG is a control flow graph: basic blocks (sorted by start address, IDs
// dense 0..n-1) plus the directed edge structure between them.
type CFG struct {
	Blocks []*Block
	Graph  *graph.Directed
}

// builder implements Algorithm 2's mutable state.
type builder struct {
	blocks  map[uint64]*Block
	edges   map[uint64]map[uint64]bool // start addr -> set of successor start addrs
	ordered []uint64
}

// getBlockAtAddr returns the block starting at addr, creating it if needed —
// the paper's helper of the same name.
func (b *builder) getBlockAtAddr(addr uint64) *Block {
	if blk, ok := b.blocks[addr]; ok {
		return blk
	}
	blk := &Block{Start: addr}
	b.blocks[addr] = blk
	b.edges[addr] = make(map[uint64]bool)
	b.ordered = append(b.ordered, addr)
	return blk
}

func (b *builder) addEdge(from, to *Block) {
	b.edges[from.Start][to.Start] = true
}

// Build runs both passes over the program and returns its CFG. Programs with
// no instructions yield an empty CFG.
func Build(p *asm.Program) *CFG {
	defer obs.TimeStage(obs.StageCFGBuild)()
	asm.TagProgram(p)
	return connectBlocks(p)
}

// connectBlocks is Algorithm 2: a single in-order sweep that creates blocks
// at leaders, links fall-through successors, and links branch targets.
func connectBlocks(p *asm.Program) *CFG {
	b := &builder{
		blocks: make(map[uint64]*Block),
		edges:  make(map[uint64]map[uint64]bool),
	}
	var currBlock *Block
	for _, inst := range p.Insts {
		if inst.Start {
			currBlock = b.getBlockAtAddr(inst.Addr)
		}
		if currBlock == nil {
			// Defensive: cannot happen after TagProgram (entry is a
			// leader), but keeps the sweep total.
			currBlock = b.getBlockAtAddr(inst.Addr)
		}
		nextBlock := currBlock

		if nextInst := p.Next(inst); nextInst != nil {
			if inst.FallThrough && nextInst.Start {
				nextBlock = b.getBlockAtAddr(nextInst.Addr)
				b.addEdge(currBlock, nextBlock)
			}
		}

		if inst.HasBranch {
			target := b.getBlockAtAddr(inst.BranchTo)
			b.addEdge(currBlock, target)
		}

		currBlock.Insts = append(currBlock.Insts, inst)
		currBlock = nextBlock
	}
	return b.finish()
}

// finish orders blocks by start address, assigns dense IDs and materializes
// the edge structure.
func (b *builder) finish() *CFG {
	sort.Slice(b.ordered, func(i, j int) bool { return b.ordered[i] < b.ordered[j] })
	blocks := make([]*Block, len(b.ordered))
	idOf := make(map[uint64]int, len(b.ordered))
	for i, addr := range b.ordered {
		blk := b.blocks[addr]
		blk.ID = i
		blocks[i] = blk
		idOf[addr] = i
	}
	g := graph.NewDirected(len(blocks))
	for from, tos := range b.edges {
		for to := range tos {
			g.AddEdge(idOf[from], idOf[to])
		}
	}
	return &CFG{Blocks: blocks, Graph: g}
}

// BlockAt returns the block starting at addr, or nil.
func (c *CFG) BlockAt(addr uint64) *Block {
	i := sort.Search(len(c.Blocks), func(i int) bool { return c.Blocks[i].Start >= addr })
	if i < len(c.Blocks) && c.Blocks[i].Start == addr {
		return c.Blocks[i]
	}
	return nil
}

// NumBlocks returns the number of basic blocks.
func (c *CFG) NumBlocks() int { return len(c.Blocks) }

// NumEdges returns the number of directed edges.
func (c *CFG) NumEdges() int { return c.Graph.NumEdges() }

// TotalInstructions returns the instruction count across all blocks.
func (c *CFG) TotalInstructions() int {
	total := 0
	for _, b := range c.Blocks {
		total += len(b.Insts)
	}
	return total
}

// Validate checks structural invariants: dense sorted IDs, non-overlapping
// blocks, every edge endpoint in range, and each non-empty block's
// instructions contiguous in address order.
func (c *CFG) Validate() error {
	var prevEnd uint64
	for i, b := range c.Blocks {
		if b.ID != i {
			return fmt.Errorf("cfg: block %d has ID %d", i, b.ID)
		}
		if i > 0 && b.Start < prevEnd {
			return fmt.Errorf("cfg: block %d at %#x overlaps previous ending at %#x", i, b.Start, prevEnd)
		}
		for j, inst := range b.Insts {
			if j == 0 && inst.Addr != b.Start {
				return fmt.Errorf("cfg: block %d first instruction %#x != start %#x", i, inst.Addr, b.Start)
			}
			if j > 0 && inst.Addr <= b.Insts[j-1].Addr {
				return fmt.Errorf("cfg: block %d instructions out of order at %#x", i, inst.Addr)
			}
		}
		if n := len(b.Insts); n > 0 {
			prevEnd = b.Insts[n-1].Addr + b.Insts[n-1].Size
		} else {
			prevEnd = b.Start
		}
	}
	return nil
}

// String renders the CFG's blocks and edges for debugging and the
// cfgexplore example.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "block %d @ %#x (%d insts)", b.ID, b.Start, len(b.Insts))
		if succ := c.Graph.Succ(b.ID); len(succ) > 0 {
			fmt.Fprintf(&sb, " -> %v", succ)
		}
		sb.WriteString("\n")
		for _, in := range b.Insts {
			ops := strings.Join(in.Operands, ", ")
			fmt.Fprintf(&sb, "  %08x  %-6s %s\n", in.Addr, in.Mnemonic, ops)
		}
	}
	return sb.String()
}
