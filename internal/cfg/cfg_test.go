package cfg

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
)

const loopAsm = `
00401000  push ebp
00401001  mov  ebp, esp
00401003  mov  ecx, 10
00401008  xor  eax, eax
0040100a  add  eax, ecx
0040100c  dec  ecx
0040100d  cmp  ecx, 0
00401010  jnz  0x40100a
00401012  call 0x401020
00401017  pop  ebp
00401018  ret
00401020  mov  eax, 1
00401025  ret
`

func buildFrom(t *testing.T, text string) *CFG {
	t.Helper()
	p, err := asm.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	c := Build(p)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildLoopFunction(t *testing.T) {
	c := buildFrom(t, loopAsm)
	// Leaders: 0x401000 (entry), 0x40100a (jnz target), 0x401012 (jnz
	// fall-through), 0x401017 (call return site), 0x401020 (call target).
	wantStarts := []uint64{0x401000, 0x40100a, 0x401012, 0x401017, 0x401020}
	if c.NumBlocks() != len(wantStarts) {
		t.Fatalf("blocks = %d, want %d\n%s", c.NumBlocks(), len(wantStarts), c)
	}
	for i, start := range wantStarts {
		if c.Blocks[i].Start != start {
			t.Fatalf("block %d starts at %#x, want %#x", i, c.Blocks[i].Start, start)
		}
	}

	id := func(addr uint64) int {
		b := c.BlockAt(addr)
		if b == nil {
			t.Fatalf("no block at %#x", addr)
		}
		return b.ID
	}
	edges := [][2]uint64{
		{0x401000, 0x40100a}, // entry falls into loop body
		{0x40100a, 0x40100a}, // loop back edge (jnz to own leader)
		{0x40100a, 0x401012}, // loop exit fall-through
		{0x401012, 0x401020}, // call edge
		{0x401012, 0x401017}, // call return-site fall-through
	}
	for _, e := range edges {
		if !c.Graph.HasEdge(id(e[0]), id(e[1])) {
			t.Errorf("missing edge %#x -> %#x\n%s", e[0], e[1], c)
		}
	}
	// ret blocks have no successors.
	if got := c.Graph.OutDegree(id(0x401017)); got != 0 {
		t.Errorf("ret block out-degree = %d, want 0", got)
	}
	if got := c.Graph.OutDegree(id(0x401020)); got != 0 {
		t.Errorf("callee ret block out-degree = %d, want 0", got)
	}
}

func TestBlockInstructionPartition(t *testing.T) {
	c := buildFrom(t, loopAsm)
	if c.TotalInstructions() != 13 {
		t.Fatalf("total instructions = %d, want 13", c.TotalInstructions())
	}
	// Entry block holds the four instructions before the loop leader.
	if got := c.Blocks[0].NumInsts(); got != 4 {
		t.Fatalf("entry block has %d instructions, want 4\n%s", got, c)
	}
	// Loop body: add, dec, cmp, jnz.
	if got := c.BlockAt(0x40100a).NumInsts(); got != 4 {
		t.Fatalf("loop block has %d instructions, want 4", got)
	}
}

func TestUnconditionalJumpBlockSplit(t *testing.T) {
	c := buildFrom(t, `
00401000 mov eax, 1
00401005 jmp 0x40100a
00401007 mov ebx, 2
0040100a ret
`)
	// Blocks: entry(mov,jmp), dead(mov), target(ret).
	if c.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3\n%s", c.NumBlocks(), c)
	}
	entry, dead, target := c.Blocks[0], c.Blocks[1], c.Blocks[2]
	if !c.Graph.HasEdge(entry.ID, target.ID) {
		t.Fatal("missing jmp edge")
	}
	if c.Graph.HasEdge(entry.ID, dead.ID) {
		t.Fatal("jmp must not fall through to dead code")
	}
	// Dead code falls through into the target block.
	if !c.Graph.HasEdge(dead.ID, target.ID) {
		t.Fatal("dead block should fall through to target")
	}
}

func TestBranchOutsideProgramCreatesExternalBlock(t *testing.T) {
	c := buildFrom(t, `
00401000 call 0x500000
00401005 ret
`)
	// The external callee gets an empty placeholder block.
	ext := c.BlockAt(0x500000)
	if ext == nil {
		t.Fatalf("no external block\n%s", c)
	}
	if ext.NumInsts() != 0 {
		t.Fatalf("external block has %d instructions, want 0", ext.NumInsts())
	}
	if !c.Graph.HasEdge(c.BlockAt(0x401000).ID, ext.ID) {
		t.Fatal("missing edge to external block")
	}
}

func TestSingleBlockProgram(t *testing.T) {
	c := buildFrom(t, `
00401000 mov eax, 1
00401005 ret
`)
	if c.NumBlocks() != 1 {
		t.Fatalf("blocks = %d, want 1", c.NumBlocks())
	}
	if c.NumEdges() != 0 {
		t.Fatalf("edges = %d, want 0", c.NumEdges())
	}
}

func TestEmptyProgram(t *testing.T) {
	p, err := asm.NewProgram(nil)
	if err != nil {
		t.Fatal(err)
	}
	c := Build(p)
	if c.NumBlocks() != 0 {
		t.Fatalf("blocks = %d, want 0", c.NumBlocks())
	}
}

func TestConsecutiveJumps(t *testing.T) {
	c := buildFrom(t, `
00401000 jz 0x401004
00401002 jmp 0x401006
00401004 nop
00401005 ret
00401006 ret
`)
	// jz: leader targets at 0x401004 and fall-through 0x401002.
	// Note 0x401004 nop falls through into 0x401005 which is NOT a leader,
	// so nop+ret form one block.
	b0 := c.BlockAt(0x401000)
	b1 := c.BlockAt(0x401002)
	b2 := c.BlockAt(0x401004)
	b3 := c.BlockAt(0x401006)
	if b0 == nil || b1 == nil || b2 == nil || b3 == nil {
		t.Fatalf("missing blocks\n%s", c)
	}
	if c.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4\n%s", c.NumBlocks(), c)
	}
	if b2.NumInsts() != 2 {
		t.Fatalf("nop block has %d instructions, want 2 (nop+ret)", b2.NumInsts())
	}
	for _, e := range [][2]int{{b0.ID, b2.ID}, {b0.ID, b1.ID}, {b1.ID, b3.ID}} {
		if !c.Graph.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v\n%s", e, c)
		}
	}
}

func TestBackToBackCalls(t *testing.T) {
	c := buildFrom(t, `
00401000 call 0x401010
00401005 call 0x401010
0040100a ret
00401010 ret
`)
	callee := c.BlockAt(0x401010)
	b0 := c.BlockAt(0x401000)
	b1 := c.BlockAt(0x401005)
	if b0 == nil || b1 == nil || callee == nil {
		t.Fatalf("missing blocks\n%s", c)
	}
	if !c.Graph.HasEdge(b0.ID, callee.ID) || !c.Graph.HasEdge(b1.ID, callee.ID) {
		t.Fatal("both call sites must edge to the callee")
	}
	if !c.Graph.HasEdge(b0.ID, b1.ID) {
		t.Fatal("first call must fall through to second")
	}
}

// TestEveryInstructionAssignedExactlyOnce is the partition invariant: the
// blocks of a CFG partition the program's instructions.
func TestEveryInstructionAssignedExactlyOnce(t *testing.T) {
	f := func(seed int64) bool {
		text := randomProgramText(rand.New(rand.NewSource(seed)))
		p, err := asm.ParseString(text)
		if err != nil {
			return false
		}
		c := Build(p)
		if err := c.Validate(); err != nil {
			return false
		}
		seen := make(map[uint64]int)
		for _, b := range c.Blocks {
			for _, in := range b.Insts {
				seen[in.Addr]++
			}
		}
		if len(seen) != p.Len() {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	c := buildFrom(t, loopAsm)
	text := c.String()
	for _, want := range []string{"block 0", "push", "jnz", "-> [1]"} {
		if !strings.Contains(text, want) {
			t.Fatalf("String() missing %q:\n%s", want, text)
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	c := buildFrom(t, loopAsm)
	// Corrupt the ID sequence.
	c.Blocks[1].ID = 7
	if err := c.Validate(); err == nil {
		t.Fatal("want ID error")
	}
	c.Blocks[1].ID = 1

	// Corrupt instruction order inside a block.
	b := c.Blocks[0]
	b.Insts[0], b.Insts[1] = b.Insts[1], b.Insts[0]
	if err := c.Validate(); err == nil {
		t.Fatal("want order error")
	}
	b.Insts[0], b.Insts[1] = b.Insts[1], b.Insts[0]

	// Corrupt a block's start address.
	oldStart := c.Blocks[2].Start
	c.Blocks[2].Start = oldStart + 1
	if err := c.Validate(); err == nil {
		t.Fatal("want first-instruction mismatch error")
	}
	c.Blocks[2].Start = oldStart

	if err := c.Validate(); err != nil {
		t.Fatalf("restored CFG should validate: %v", err)
	}
}

// randomProgramText emits a small random but well-formed program mixing
// straight-line code, conditional/unconditional jumps to random in-range
// addresses, calls and returns.
func randomProgramText(rng *rand.Rand) string {
	n := 5 + rng.Intn(40)
	addrs := make([]uint64, n)
	base := uint64(0x400000)
	for i := range addrs {
		addrs[i] = base
		base += uint64(1 + rng.Intn(6))
	}
	var sb []byte
	for i, addr := range addrs {
		target := addrs[rng.Intn(n)]
		var line string
		switch rng.Intn(8) {
		case 0:
			line = fmt.Sprintf("%08x jnz 0x%x", addr, target)
		case 1:
			line = fmt.Sprintf("%08x jmp 0x%x", addr, target)
		case 2:
			line = fmt.Sprintf("%08x call 0x%x", addr, target)
		case 3:
			line = fmt.Sprintf("%08x ret", addr)
		case 4:
			line = fmt.Sprintf("%08x cmp eax, %d", addr, rng.Intn(100))
		default:
			line = fmt.Sprintf("%08x mov eax, %d", addr, rng.Intn(100))
		}
		_ = i
		sb = append(sb, line...)
		sb = append(sb, '\n')
	}
	return string(sb)
}
