// cfgexplore demonstrates the front half of the MAGIC pipeline (Figure 1)
// on a hand-written disassembly listing: the two-pass CFG construction of
// Section IV-A (instruction tagging via the visitor pattern, then block
// creation and edge wiring) followed by Table I attribute extraction.
//
//	go run ./examples/cfgexplore [file.asm]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/acfg"
	"repro/internal/asm"
	"repro/internal/cfg"
)

// demo is a small function with a loop, a conditional, and a call — enough
// to exercise every edge kind the builder produces.
const demo = `
; compute something in a loop, then dispatch
00401000  push ebp
00401001  mov  ebp, esp
00401003  mov  ecx, 32
00401008  xor  eax, eax
0040100a  add  eax, ecx
0040100c  dec  ecx
0040100d  cmp  ecx, 0
00401010  jnz  0x40100a
00401012  cmp  eax, 100
00401015  jle  0x401020
00401017  call 0x401030
0040101c  jmp  0x401028
00401020  mov  ebx, eax
00401022  shl  ebx, 2
00401025  mov  eax, ebx
00401028  pop  ebp
00401029  ret
00401030  mov  eax, 0
00401035  ret
`

func main() {
	text := demo
	if len(os.Args) > 1 {
		raw, err := os.ReadFile(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		text = string(raw)
	}

	prog, err := asm.ParseString(text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d instructions\n\n", prog.Len())

	c := cfg.Build(prog)
	if err := c.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control flow graph: %d blocks, %d edges\n\n", c.NumBlocks(), c.NumEdges())
	fmt.Println(c)

	a := acfg.FromCFG(c)
	fmt.Println("Table I attributes per basic block:")
	fmt.Printf("%-8s", "block")
	for _, name := range acfg.AttributeNames {
		// Shorten the names for a readable table.
		fmt.Printf(" %6s", shorten(name))
	}
	fmt.Println()
	for i := 0; i < a.NumVertices(); i++ {
		fmt.Printf("%-8d", i)
		for _, v := range a.Attrs.Row(i) {
			fmt.Printf(" %6.0f", v)
		}
		fmt.Println()
	}
}

func shorten(name string) string {
	switch name {
	case "# Numeric Constants":
		return "const"
	case "# Transfer Instructions":
		return "xfer"
	case "# Call Instructions":
		return "call"
	case "# Arithmetic Instructions":
		return "arith"
	case "# Compare Instructions":
		return "cmp"
	case "# Mov Instructions":
		return "mov"
	case "# Termination Instructions":
		return "term"
	case "# Data Declaration Instructions":
		return "data"
	case "# Total Instructions":
		return "total"
	case "# Offspring, i.e., Degree":
		return "deg"
	case "# Instructions in the Vertex":
		return "insts"
	default:
		return name
	}
}
