// mskcfg runs the paper's headline experiment end-to-end at example scale:
// synthesize an MSKCFG-style corpus of disassembly listings, push every
// sample through the real pipeline (parser → two-pass CFG builder → Table I
// ACFG extraction — that happens inside malgen.MSKCFG), run stratified
// cross-validation of the best Table II model and print the Table III
// per-family precision/recall/F1 table. It also demonstrates saving a
// trained model and reloading it for prediction.
//
//	go run ./examples/mskcfg
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/acfg"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/malgen"
)

func main() {
	corpus, err := malgen.MSKCFG(malgen.Options{TotalSamples: 220, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MSKCFG-style corpus: %d samples\n", corpus.Len())
	counts := corpus.CountByClass()
	for i, f := range corpus.Families {
		fmt.Printf("  %-16s %d\n", f, counts[i])
	}

	cfg := core.DefaultConfig(corpus.NumClasses(), acfg.NumAttributes)
	// The hyperparameter sweep at this corpus scale selects sort pooling
	// with the paper's WeightedVertices extension (see EXPERIMENTS.md).
	cfg.Pooling = core.SortPooling
	cfg.Head = core.WeightedVerticesHead
	cfg.PoolingRatio = 0.64
	cfg.Epochs = 12

	cv, err := eval.CrossValidate(corpus, 3, 1, func(f int) (eval.Classifier, error) {
		fmt.Printf("fold %d/3...\n", f+1)
		c := cfg
		c.Seed = int64(f + 1)
		return &core.Classifier{Cfg: c}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable III-style cross-validation scores:")
	fmt.Print(cv.Mean.Table())

	// Train a final model on a train/val split, save it, reload it, and
	// classify one unseen sample — the deployment flow of Section IV-C.
	train, val, err := corpus.TrainValSplit(0.2, 3)
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.NewModel(cfg, train.Sizes())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := core.Train(model, train, val, core.TrainOptions{}); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "magic-mskcfg-model.json")
	if err := model.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	reloaded, err := core.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	s := val.Samples[0]
	probs := reloaded.Predict(s.ACFG)
	best := reloaded.PredictClass(s.ACFG)
	fmt.Printf("\nreloaded model (%s) classifies %s as %s (%.1f%%), true %s\n",
		path, s.Name, corpus.Families[best], 100*probs[best], corpus.Families[s.Label])
}
