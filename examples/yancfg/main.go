// yancfg reproduces the paper's second evaluation at example scale: the
// YANCFG-style corpus of pre-built ACFGs (13 classes including Benign),
// cross-validation of the best Table II model for that dataset, and the
// Figure 11 comparison against the ESVC chained-SVM ensemble of [8] —
// watch the big families score ≥0.9 F1 while the small overlapping
// families (Ldpinch, Lmir, Sdbot) degrade, and MAGIC beat ESVC on most
// families.
//
//	go run ./examples/yancfg
package main

import (
	"fmt"
	"log"

	"repro/internal/acfg"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/malgen"
)

func main() {
	corpus, err := malgen.YANCFG(malgen.Options{TotalSamples: 300, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("YANCFG-style corpus: %d samples, %d classes\n", corpus.Len(), corpus.NumClasses())

	cfg := core.DefaultConfig(corpus.NumClasses(), acfg.NumAttributes)
	// The hyperparameter sweep at this corpus scale selects sort pooling
	// with the paper's WeightedVertices extension (see EXPERIMENTS.md).
	cfg.Pooling = core.SortPooling
	cfg.Head = core.WeightedVerticesHead
	cfg.PoolingRatio = 0.2
	cfg.DropoutRate = 0.2
	cfg.WeightDecay = 5e-4
	cfg.Epochs = 12

	fmt.Println("cross-validating MAGIC...")
	magic, err := eval.CrossValidate(corpus, 3, 1, func(f int) (eval.Classifier, error) {
		c := cfg
		c.Seed = int64(f + 1)
		return &core.Classifier{Cfg: c}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable V-style cross-validation scores:")
	fmt.Print(magic.Mean.Table())

	fmt.Println("cross-validating ESVC (chained SVM ensemble of [8])...")
	esvc, err := eval.CrossValidate(corpus, 3, 1, func(f int) (eval.Classifier, error) {
		return baseline.NewESVC(int64(f + 1)), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nFigure 11-style F1 comparison (positive = MAGIC better):")
	fmt.Printf("%-12s %10s %10s %12s\n", "Family", "MAGIC F1", "ESVC F1", "Improvement")
	for _, fam := range corpus.Families {
		m, _ := magic.Mean.ScoreFor(fam)
		e, _ := esvc.Mean.ScoreFor(fam)
		fmt.Printf("%-12s %10.4f %10.4f %+12.4f\n", fam, m.F1, e.F1, m.F1-e.F1)
	}
}
