// Quickstart: the smallest end-to-end MAGIC run. It generates a tiny
// synthetic malware corpus, trains a DGCNN classifier, evaluates it on a
// holdout split and classifies one unseen sample — about a minute on a
// laptop core.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/acfg"
	"repro/internal/core"
	"repro/internal/malgen"
)

func main() {
	// 1. Generate a small labeled corpus (nine MSKCFG-style families).
	corpus, err := malgen.MSKCFG(malgen.Options{TotalSamples: 150, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d samples across %d families\n", corpus.Len(), corpus.NumClasses())

	// 2. Hold out 20% for testing.
	train, test, err := corpus.TrainValSplit(0.2, 7)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Build and train the DGCNN with the default (adaptive-pooling)
	// architecture.
	cfg := core.DefaultConfig(corpus.NumClasses(), acfg.NumAttributes)
	cfg.Epochs = 12
	model, err := core.NewModel(cfg, train.Sizes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training", model)
	if _, err := core.Train(model, train, nil, core.TrainOptions{}); err != nil {
		log.Fatal(err)
	}

	// 4. Evaluate on the holdout.
	correct := 0
	for _, s := range test.Samples {
		if model.PredictClass(s.ACFG) == s.Label {
			correct++
		}
	}
	fmt.Printf("holdout accuracy: %.1f%% (%d/%d)\n",
		100*float64(correct)/float64(test.Len()), correct, test.Len())

	// 5. Classify one unseen sample.
	sample := test.Samples[0]
	probs := model.Predict(sample.ACFG)
	best := model.PredictClass(sample.ACFG)
	fmt.Printf("sample %s (%d basic blocks): predicted %s (%.1f%%), true %s\n",
		sample.Name, sample.ACFG.NumVertices(),
		corpus.Families[best], 100*probs[best], corpus.Families[sample.Label])
}
